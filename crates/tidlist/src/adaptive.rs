//! [`AdaptiveSet`]: a [`TidSet`] that starts as a tid-list and switches
//! to the diffset representation mid-recursion.
//!
//! Tid-lists are compact near the top of the lattice (short lists, sparse
//! overlap); diffsets win deep down, where siblings share almost all of
//! their tids and the differences are near-empty (§5.3's
//! memory-utilization remark, Zaki's d-Eclat follow-up). `AdaptiveSet`
//! carries a per-member `fuel` counter: each tid-list join burns one unit,
//! and the join performed at zero fuel *converts* — it produces
//! `d(P ∪ xy) = t(Px) − t(Py)` via [`DiffSet::from_tidlists`], after
//! which the subtree continues purely in diffset form. Fuel `0` therefore
//! means "switch at the first join", i.e. a pure-diffset run, and a fuel
//! larger than the recursion depth never switches at all.
//!
//! All members of one equivalence class share the same fuel (they were
//! produced by the same number of joins), so within a class a join never
//! sees mixed representations. Mixed operands can still reach the API
//! (look-ahead folds, external callers), and are handled exactly rather
//! than rejected: for a tid side `t ⊆ t(P)` and a diffset side `d` over
//! the same prefix, `t ∩ t(other) = t − d.diff`.

use crate::diffset::DiffSet;
use crate::set::TidSet;
use crate::{IntersectOutcome, TidList};
use mining_types::OpMeter;

/// Vertical representation that switches from tid-lists to diffsets after
/// a configured number of join levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptiveSet {
    /// Still in tid-list form; `fuel` joins remain before the switch.
    Tids {
        /// The member's tid-list.
        tids: TidList,
        /// Remaining tid-list joins before converting to diffsets.
        fuel: u32,
    },
    /// Switched: diffset relative to the prefix at conversion depth.
    Diff(DiffSet),
}

impl AdaptiveSet {
    /// Wrap an `L2` member's tid-list with a switch budget. `fuel = 0`
    /// converts on the very first join (pure d-Eclat below `L2`).
    pub fn with_fuel(tids: TidList, fuel: u32) -> AdaptiveSet {
        AdaptiveSet::Tids { tids, fuel }
    }

    /// True once the member has switched to diffset form.
    pub fn is_diffset(&self) -> bool {
        matches!(self, AdaptiveSet::Diff(_))
    }
}

/// Both operands of a join. The class invariant makes same-representation
/// pairs the common case; mixed pairs are legal (look-ahead folds mix
/// depths) and resolve exactly via the shared prefix.
enum Pair<'a> {
    Tids(&'a TidList, &'a TidList, u32),
    Diffs(&'a DiffSet, &'a DiffSet),
    /// One tid-list operand, one diffset operand, both over the same
    /// class prefix `P`. Because `t ⊆ t(P)` and
    /// `t(other) = t(P) − d.diff`, the join is exactly `t − d.diff` —
    /// for either operand order. Carries the tid side's fuel.
    Mixed(&'a TidList, u32, &'a DiffSet),
}

fn pair<'a>(a: &'a AdaptiveSet, b: &'a AdaptiveSet) -> Pair<'a> {
    match (a, b) {
        (AdaptiveSet::Tids { tids: ta, fuel }, AdaptiveSet::Tids { tids: tb, .. }) => {
            Pair::Tids(ta, tb, *fuel)
        }
        (AdaptiveSet::Diff(da), AdaptiveSet::Diff(db)) => Pair::Diffs(da, db),
        (AdaptiveSet::Tids { tids, fuel }, AdaptiveSet::Diff(d))
        | (AdaptiveSet::Diff(d), AdaptiveSet::Tids { tids, fuel }) => Pair::Mixed(tids, *fuel, d),
    }
}

/// Fold accumulator: tracks the representation *per join depth* so a
/// `TidList ∩ TidList` step, a `TidList → DiffSet` conversion step, and a
/// `DiffSet` difference step can mix in one look-ahead fold.
enum Acc {
    /// Still in tid-list form with remaining fuel.
    Tids { tids: TidList, fuel: u32 },
    /// Converted mid-fold: `base` is the accumulator's tid-list at
    /// conversion time (itemset `B`); `diff` accumulates relative to `B`,
    /// so the candidate's tids are `base − diff`.
    Based { base: TidList, diff: TidList },
    /// `self` started in diffset form `d(Px₁)`: `diff` accumulates
    /// `∪ (d(Px_j) − d(Px₁))`, i.e. the candidate's diff relative to
    /// `Px₁` (cf. `DiffSet::fold_join_with`).
    Rel { diff: TidList },
}

impl AdaptiveSet {
    /// Multi-way look-ahead fold with per-depth representation tracking.
    ///
    /// Folds `self` with every member of `rest` (same-class siblings in
    /// member order) and returns the representation of the full union, or
    /// `None` exactly when `minsup = Some(s)` and the union's support is
    /// below `s` (§5.3 short-circuit applied per step). Each fold step
    /// burns one unit of fuel, matching the pairwise join semantics: a
    /// member with fuel `f` converts to diffset form at step `f + 1`.
    pub fn fold_with(
        &self,
        rest: &[&AdaptiveSet],
        minsup: Option<u32>,
        meter: &mut OpMeter,
    ) -> Option<AdaptiveSet> {
        if let Some(s) = minsup {
            if self.support() < s {
                return None;
            }
        }
        if rest.is_empty() {
            // Zero joins leave the operand unchanged.
            return Some(self.clone());
        }
        let d1 = match self {
            AdaptiveSet::Diff(d) => Some(d),
            AdaptiveSet::Tids { .. } => None,
        };
        let mut acc = match self {
            AdaptiveSet::Tids { tids, fuel } => Acc::Tids {
                tids: tids.clone(),
                fuel: *fuel,
            },
            AdaptiveSet::Diff(_) => Acc::Rel {
                diff: TidList::new(),
            },
        };
        // Every bounded arm below preserves "accumulator support >= s", so
        // the `base.support() - s` / `d1.support - s` budgets never
        // underflow.
        for &m in rest {
            acc = match (acc, m) {
                (Acc::Tids { tids, fuel }, AdaptiveSet::Tids { tids: tm, .. }) => {
                    if fuel > 0 {
                        let joined = match minsup {
                            Some(s) => match tids.intersect_bounded_metered(tm, s, meter) {
                                IntersectOutcome::Frequent(t) => t,
                                IntersectOutcome::Infrequent => return None,
                            },
                            None => tids.intersect_metered(tm, meter),
                        };
                        Acc::Tids {
                            tids: joined,
                            fuel: fuel - 1,
                        }
                    } else {
                        // Conversion step: the join at zero fuel produces
                        // a diffset relative to the accumulator itself.
                        let d = match minsup {
                            Some(s) => DiffSet::from_tidlists_bounded_metered(&tids, tm, s, meter)?,
                            None => DiffSet::from_tidlists_metered(&tids, tm, meter),
                        };
                        Acc::Based {
                            base: tids,
                            diff: d.diff,
                        }
                    }
                }
                (Acc::Tids { tids, fuel }, AdaptiveSet::Diff(dm)) => {
                    // Mixed step: t ⊆ t(P) ⟹ t ∩ t(other) = t − d(other).
                    let t = tids.difference_metered(&dm.diff, meter);
                    if let Some(s) = minsup {
                        if t.support() < s {
                            return None;
                        }
                    }
                    Acc::Tids {
                        tids: t,
                        fuel: fuel.saturating_sub(1),
                    }
                }
                (Acc::Based { base, diff }, m) => {
                    // Candidate tids are base − diff; the next member
                    // removes base ∖ t_m (tid side) or base ∩ d_m (diff
                    // side) — unions only grow, so the §5.3 bail is sound.
                    let contrib = match m {
                        AdaptiveSet::Tids { tids: tm, .. } => base.difference_metered(tm, meter),
                        AdaptiveSet::Diff(dm) => base.intersect_metered(&dm.diff, meter),
                    };
                    let diff = diff.union_metered(&contrib, meter);
                    if let Some(s) = minsup {
                        if diff.support() > base.support() - s {
                            return None;
                        }
                    }
                    Acc::Based { base, diff }
                }
                (Acc::Rel { diff }, m) => {
                    let d1 = d1.expect("Rel accumulator implies diffset self");
                    match m {
                        AdaptiveSet::Diff(dm) => {
                            let contrib = dm.diff.difference_metered(&d1.diff, meter);
                            let diff = diff.union_metered(&contrib, meter);
                            if let Some(s) = minsup {
                                if diff.len() > (d1.support - s) as usize {
                                    return None;
                                }
                            }
                            Acc::Rel { diff }
                        }
                        AdaptiveSet::Tids { tids: tm, .. } => {
                            // Demote to tid form:
                            // t(C ∪ x) = t_m − d(Px₁) − acc_diff.
                            let t = tm
                                .difference_metered(&d1.diff, meter)
                                .difference_metered(&diff, meter);
                            if let Some(s) = minsup {
                                if t.support() < s {
                                    return None;
                                }
                            }
                            Acc::Tids { tids: t, fuel: 0 }
                        }
                    }
                }
            };
        }
        Some(match acc {
            Acc::Tids { tids, fuel } => AdaptiveSet::Tids { tids, fuel },
            Acc::Based { base, diff } => AdaptiveSet::Diff(DiffSet {
                support: base.support() - diff.support(),
                diff,
            }),
            Acc::Rel { diff } => {
                let d1 = d1.expect("Rel accumulator implies diffset self");
                AdaptiveSet::Diff(DiffSet {
                    support: d1.support - diff.support(),
                    diff,
                })
            }
        })
    }
}

impl TidSet for AdaptiveSet {
    fn support(&self) -> u32 {
        match self {
            AdaptiveSet::Tids { tids, .. } => tids.support(),
            AdaptiveSet::Diff(d) => d.support,
        }
    }

    fn byte_size(&self) -> u64 {
        match self {
            AdaptiveSet::Tids { tids, .. } => tids.byte_size(),
            AdaptiveSet::Diff(d) => d.byte_size(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => AdaptiveSet::Tids {
                tids: ta.intersect(tb),
                fuel: fuel - 1,
            },
            Pair::Tids(ta, tb, _) => AdaptiveSet::Diff(DiffSet::from_tidlists(ta, tb)),
            Pair::Diffs(da, db) => AdaptiveSet::Diff(da.join(db)),
            Pair::Mixed(t, fuel, d) => AdaptiveSet::Tids {
                tids: t.difference(&d.diff),
                fuel: fuel.saturating_sub(1),
            },
        }
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => ta
                .intersect_bounded(tb, minsup)
                .into_frequent()
                .map(|tids| AdaptiveSet::Tids {
                    tids,
                    fuel: fuel - 1,
                }),
            Pair::Tids(ta, tb, _) => {
                DiffSet::from_tidlists_bounded(ta, tb, minsup).map(AdaptiveSet::Diff)
            }
            Pair::Diffs(da, db) => da.join_bounded(db, minsup).map(AdaptiveSet::Diff),
            Pair::Mixed(t, fuel, d) => {
                let tids = t.difference(&d.diff);
                (tids.support() >= minsup).then(|| AdaptiveSet::Tids {
                    tids,
                    fuel: fuel.saturating_sub(1),
                })
            }
        }
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => AdaptiveSet::Tids {
                tids: ta.intersect_metered(tb, meter),
                fuel: fuel - 1,
            },
            Pair::Tids(ta, tb, _) => {
                AdaptiveSet::Diff(DiffSet::from_tidlists_metered(ta, tb, meter))
            }
            Pair::Diffs(da, db) => AdaptiveSet::Diff(da.join_metered(db, meter)),
            Pair::Mixed(t, fuel, d) => AdaptiveSet::Tids {
                tids: t.difference_metered(&d.diff, meter),
                fuel: fuel.saturating_sub(1),
            },
        }
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => {
                match ta.intersect_bounded_metered(tb, minsup, meter) {
                    IntersectOutcome::Frequent(tids) => Some(AdaptiveSet::Tids {
                        tids,
                        fuel: fuel - 1,
                    }),
                    IntersectOutcome::Infrequent => None,
                }
            }
            Pair::Tids(ta, tb, _) => {
                DiffSet::from_tidlists_bounded_metered(ta, tb, minsup, meter).map(AdaptiveSet::Diff)
            }
            Pair::Diffs(da, db) => da
                .join_bounded_metered(db, minsup, meter)
                .map(AdaptiveSet::Diff),
            Pair::Mixed(t, fuel, d) => {
                let tids = t.difference_metered(&d.diff, meter);
                (tids.support() >= minsup).then(|| AdaptiveSet::Tids {
                    tids,
                    fuel: fuel.saturating_sub(1),
                })
            }
        }
    }

    fn is_switched(&self) -> bool {
        self.is_diffset()
    }

    // The look-ahead fold mixes representations across depths, which the
    // pairwise default cannot (it would pair a converted accumulator with
    // unconverted siblings): delegate to the per-depth state machine.

    fn fold_join(&self, rest: &[&Self]) -> Self {
        self.fold_with(rest, None, &mut OpMeter::new())
            .expect("unbounded fold always completes")
    }

    fn fold_join_bounded(&self, rest: &[&Self], minsup: u32) -> Option<Self> {
        self.fold_with(rest, Some(minsup), &mut OpMeter::new())
    }

    fn fold_join_metered(&self, rest: &[&Self], meter: &mut OpMeter) -> Self {
        self.fold_with(rest, None, meter)
            .expect("unbounded fold always completes")
    }

    fn fold_join_bounded_metered(
        &self,
        rest: &[&Self],
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<Self> {
        self.fold_with(rest, Some(minsup), meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> (TidList, TidList, TidList) {
        let ta = TidList::of(&(0..60).collect::<Vec<_>>());
        let tb = TidList::of(&(0..60).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..60).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        (ta, tb, tc)
    }

    #[test]
    fn fuel_counts_down_then_switches() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 1);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 1);
        let j1 = a.join(&b);
        assert!(!j1.is_diffset(), "fuel 1: first join stays tid-list");
        match &j1 {
            AdaptiveSet::Tids { fuel, .. } => assert_eq!(*fuel, 0),
            _ => unreachable!(),
        }
        // Second-level join (fuel exhausted) converts.
        let sibling = AdaptiveSet::with_fuel(ta.intersect(&tb), 1).join(&b);
        let j2 = j1.join(&sibling);
        assert!(j2.is_diffset(), "fuel 0: join converts to diffset");
    }

    #[test]
    fn supports_agree_with_pure_tidlists_across_fuel() {
        let (ta, tb, tc) = lists();
        let tab = ta.intersect(&tb);
        let tac = ta.intersect(&tc);
        let expected = tab.intersect(&tac).support();
        for fuel in [0u32, 1, 2, 10] {
            let a = AdaptiveSet::with_fuel(tab.clone(), fuel);
            let b = AdaptiveSet::with_fuel(tac.clone(), fuel);
            assert_eq!(a.join(&b).support(), expected, "fuel {fuel}");
            for minsup in 1..=expected + 2 {
                let bounded = a.join_bounded(&b, minsup).map(|s| s.support());
                assert_eq!(
                    bounded,
                    (expected >= minsup).then_some(expected),
                    "fuel {fuel} minsup {minsup}"
                );
                let mut m = OpMeter::new();
                let metered = a
                    .join_bounded_metered(&b, minsup, &mut m)
                    .map(|s| s.support());
                assert_eq!(bounded, metered);
            }
        }
    }

    #[test]
    fn diffset_joins_after_switch_agree() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        let ab = a.join(&b); // converts
        assert!(ab.is_diffset());
        // Join two diffset members of the next class.
        let c = AdaptiveSet::with_fuel(ta.clone(), 0);
        let d = AdaptiveSet::with_fuel(tb.clone(), 0);
        let cd = c.join(&d);
        assert!(cd.is_diffset());
        assert_eq!(cd.support(), ta.intersect(&tb).support());
    }

    #[test]
    fn is_switched_tracks_representation() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        assert!(!a.is_switched());
        assert!(a.join(&b).is_switched());
        // Plain tid-lists / diffsets report false via the trait default.
        assert!(!TidSet::is_switched(&ta));
        assert!(!TidSet::is_switched(&DiffSet::from_tidlists(&ta, &tb)));
    }

    #[test]
    fn mixed_pair_joins_exactly_instead_of_panicking() {
        // Class prefix P = A: a tid-form member t(AB) and a diffset-form
        // member d(AC) must join to the correct t(ABC) = t(AB) − d(AC).
        let (ta, tb, tc) = lists();
        let tab = ta.intersect(&tb);
        let expected = tab.intersect(&tc);
        let tid_side = AdaptiveSet::with_fuel(tab.clone(), 3);
        let diff_side = AdaptiveSet::Diff(DiffSet::from_tidlists(&ta, &tc));
        for (x, y) in [(&tid_side, &diff_side), (&diff_side, &tid_side)] {
            let j = x.join(y);
            assert!(!j.is_diffset(), "mixed join stays in tid form");
            assert_eq!(j.support(), expected.support());
            match &j {
                AdaptiveSet::Tids { tids, fuel } => {
                    assert_eq!(tids, &expected);
                    assert_eq!(*fuel, 2, "mixed join burns one fuel");
                }
                _ => unreachable!(),
            }
            for minsup in 1..=expected.support() + 2 {
                assert_eq!(
                    x.join_bounded(y, minsup).map(|s| s.support()),
                    (expected.support() >= minsup).then_some(expected.support()),
                    "minsup {minsup}"
                );
            }
            let mut m = OpMeter::new();
            assert_eq!(x.join_metered(y, &mut m).support(), expected.support());
            assert!(m.tid_cmp > 0);
        }
    }

    #[test]
    fn fold_matches_tidlist_ground_truth_across_fuel() {
        // A 4-member class; the fold crosses the conversion depth for
        // small fuels and stays tid-list for large ones.
        let ta = TidList::of(&(0..80).collect::<Vec<_>>());
        let exts: Vec<TidList> = [2u32, 3, 5, 7]
            .iter()
            .map(|&k| TidList::of(&(0..80).filter(|x| x % k != 1).collect::<Vec<_>>()))
            .collect();
        let tids: Vec<TidList> = exts.iter().map(|t| ta.intersect(t)).collect();
        let truth = tids
            .iter()
            .skip(1)
            .fold(tids[0].clone(), |a, t| a.intersect(t));
        for fuel in [0u32, 1, 2, 10] {
            let members: Vec<AdaptiveSet> = tids
                .iter()
                .map(|t| AdaptiveSet::with_fuel(t.clone(), fuel))
                .collect();
            let rest: Vec<&AdaptiveSet> = members[1..].iter().collect();
            let mut m = OpMeter::new();
            let folded = members[0]
                .fold_with(&rest, None, &mut m)
                .expect("unbounded fold always completes");
            assert_eq!(folded.support(), truth.support(), "fuel {fuel}");
            assert!(m.tid_cmp > 0);
            // 3 fold steps: fuel below 3 must have crossed the switch.
            assert_eq!(folded.is_diffset(), fuel < 3, "fuel {fuel}");
            for minsup in 1..=truth.support() + 2 {
                let bounded = members[0]
                    .fold_with(&rest, Some(minsup), &mut OpMeter::new())
                    .map(|s| s.support());
                assert_eq!(
                    bounded,
                    (truth.support() >= minsup).then_some(truth.support()),
                    "fuel {fuel} minsup {minsup}"
                );
            }
            // Trait surface delegates to the same kernel.
            assert_eq!(members[0].fold_join(&rest).support(), truth.support());
            assert_eq!(
                members[0]
                    .fold_join_bounded(&rest, truth.support())
                    .map(|s| s.support()),
                Some(truth.support())
            );
        }
    }

    #[test]
    fn fold_from_diffset_self_handles_diff_and_tid_members() {
        // Rel accumulator: self and siblings in diffset form.
        let ta = TidList::of(&(0..80).collect::<Vec<_>>());
        let exts: Vec<TidList> = [2u32, 3, 5]
            .iter()
            .map(|&k| TidList::of(&(0..80).filter(|x| x % k != 1).collect::<Vec<_>>()))
            .collect();
        let truth = exts.iter().fold(ta.clone(), |a, t| a.intersect(t));
        let diffs: Vec<AdaptiveSet> = exts
            .iter()
            .map(|t| AdaptiveSet::Diff(DiffSet::from_tidlists(&ta, t)))
            .collect();
        let rest: Vec<&AdaptiveSet> = diffs[1..].iter().collect();
        let folded = diffs[0]
            .fold_with(&rest, None, &mut OpMeter::new())
            .unwrap();
        assert_eq!(folded.support(), truth.support());
        // Mixed rest: a diffset self folded with a tid-form sibling
        // demotes back to tid form and still gets the support right.
        let tid_member = AdaptiveSet::with_fuel(ta.intersect(&exts[1]), 5);
        let mixed_rest = [&tid_member, &diffs[2]];
        let folded = diffs[0]
            .fold_with(&mixed_rest, None, &mut OpMeter::new())
            .unwrap();
        assert_eq!(folded.support(), truth.support());
        for minsup in 1..=truth.support() + 2 {
            assert_eq!(
                diffs[0]
                    .fold_with(&mixed_rest, Some(minsup), &mut OpMeter::new())
                    .map(|s| s.support()),
                (truth.support() >= minsup).then_some(truth.support()),
                "minsup {minsup}"
            );
        }
        // Empty rest round-trips self.
        assert_eq!(
            diffs[0].fold_with(&[], None, &mut OpMeter::new()),
            Some(diffs[0].clone())
        );
    }

    #[test]
    fn metered_join_accounts_comparisons() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        let mut m = OpMeter::new();
        let j = a.join_metered(&b, &mut m);
        assert!(j.is_diffset());
        assert!(m.tid_cmp > 0, "conversion join must meter comparisons");
    }
}
