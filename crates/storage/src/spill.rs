//! Out-of-core class store — the paper's three-scan discipline applied
//! to a worker whose exchanged tid-lists exceed RAM.
//!
//! After the §6.3 exchange a processor holds the global tid-lists of
//! every equivalence class it owns. The paper writes them out — *"The
//! tid-lists of itemsets in G are then written out to disk"* — and the
//! asynchronous phase reads each class back exactly once: *"Each
//! processor computes the frequent itemsets from the classes assigned to
//! it, by reading the tid-lists directly from its local disk."* A
//! [`SpillStore`] makes that literal under a byte budget: inserted
//! classes stay resident until the budget is exceeded, then the oldest
//! residents are written to one file per class (the vertical binary
//! format of [`crate::binfmt`]); [`SpillStore::take`] faults a spilled
//! class back in, deleting its file. With a generous budget nothing
//! touches disk; with a budget of zero every class spills — the mining
//! result is identical either way, only the metered I/O differs.

use crate::binfmt;
use crate::vertical::VerticalDb;
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;
use tidlist::TidList;

/// Byte and timing counters for a store's lifetime. Bytes are exact
/// on-disk sizes (the same quantities the simulated disk model prices);
/// a run that never exceeds its budget reports all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpillMetrics {
    /// Bytes written by evictions.
    pub bytes_written: u64,
    /// Bytes read back by faults.
    pub bytes_read: u64,
    /// Wall-clock seconds spent writing evicted classes.
    pub write_secs: f64,
    /// Wall-clock seconds spent faulting classes back in.
    pub read_secs: f64,
    /// Number of classes evicted to disk.
    pub classes_spilled: u64,
    /// Number of `take` calls served from disk.
    pub faults: u64,
}

enum Slot {
    /// Never inserted, or already taken.
    Empty,
    /// In memory, counted against the budget.
    Resident(Vec<TidList>),
    /// On disk in the class file.
    Spilled,
}

/// A budgeted store of per-class tid-list vectors, keyed by class index.
///
/// Classes are inserted once (transformation phase) and taken once
/// (asynchronous phase); eviction is insertion-order — the class loop
/// mines in scheduled order, so the oldest resident is the best spill
/// victim under a single pass. The store owns its directory and removes
/// it on drop.
pub struct SpillStore {
    dir: PathBuf,
    budget: u64,
    resident_bytes: u64,
    slots: Vec<Slot>,
    /// Insertion order of resident classes (eviction queue).
    resident_order: VecDeque<usize>,
    metrics: SpillMetrics,
}

impl SpillStore {
    /// Create a store for `num_classes` classes under `dir` (created if
    /// missing) holding at most `budget_bytes` of resident tid-lists.
    ///
    /// # Errors
    /// I/O errors creating the directory.
    pub fn create(
        dir: impl AsRef<Path>,
        budget_bytes: u64,
        num_classes: usize,
    ) -> io::Result<SpillStore> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(SpillStore {
            dir: dir.as_ref().to_path_buf(),
            budget: budget_bytes,
            resident_bytes: 0,
            slots: (0..num_classes).map(|_| Slot::Empty).collect(),
            resident_order: VecDeque::new(),
            metrics: SpillMetrics::default(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Bytes currently resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Lifetime I/O counters.
    pub fn metrics(&self) -> SpillMetrics {
        self.metrics
    }

    fn class_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("class-{id:05}.ecv"))
    }

    fn list_bytes(lists: &[TidList]) -> u64 {
        lists.iter().map(|l| 4 + l.byte_size()).sum()
    }

    /// Insert class `id`'s tid-lists, then evict oldest residents (this
    /// one included, if the budget is that tight) until the resident set
    /// fits the budget again.
    ///
    /// # Errors
    /// I/O errors writing evicted classes.
    ///
    /// # Panics
    /// Panics if `id` is out of range or already occupied.
    pub fn insert(&mut self, id: usize, lists: Vec<TidList>) -> io::Result<()> {
        assert!(
            matches!(self.slots[id], Slot::Empty),
            "class {id} inserted twice"
        );
        self.resident_bytes += Self::list_bytes(&lists);
        self.slots[id] = Slot::Resident(lists);
        self.resident_order.push_back(id);
        while self.resident_bytes > self.budget {
            let victim = self
                .resident_order
                .pop_front()
                .expect("resident bytes imply a resident class");
            let lists = match std::mem::replace(&mut self.slots[victim], Slot::Spilled) {
                Slot::Resident(lists) => lists,
                _ => unreachable!("eviction queue only holds residents"),
            };
            self.resident_bytes -= Self::list_bytes(&lists);
            let _span = eclat_obs::trace::span_arg("spill:write", victim as u64);
            let t = Instant::now();
            let mut w = BufWriter::new(File::create(self.class_path(victim))?);
            let written = binfmt::write_vertical(&VerticalDb::from_lists(lists), &mut w)?;
            self.metrics.write_secs += t.elapsed().as_secs_f64();
            self.metrics.bytes_written += written;
            self.metrics.classes_spilled += 1;
            eclat_obs::trace::instant("spill:written_bytes", written);
        }
        Ok(())
    }

    /// Take class `id` out of the store — from memory if resident,
    /// faulted back from its file (which is then deleted) if spilled.
    ///
    /// # Errors
    /// I/O or format errors reading a spilled class.
    ///
    /// # Panics
    /// Panics if `id` was never inserted or already taken.
    pub fn take(&mut self, id: usize) -> io::Result<Vec<TidList>> {
        match std::mem::replace(&mut self.slots[id], Slot::Empty) {
            Slot::Resident(lists) => {
                self.resident_bytes -= Self::list_bytes(&lists);
                self.resident_order.retain(|&r| r != id);
                Ok(lists)
            }
            Slot::Spilled => {
                let _span = eclat_obs::trace::span_arg("spill:fault", id as u64);
                let t = Instant::now();
                let path = self.class_path(id);
                let mut r = BufReader::new(File::open(&path)?);
                let (db, read) = binfmt::read_vertical(&mut r)?;
                fs::remove_file(&path)?;
                self.metrics.read_secs += t.elapsed().as_secs_f64();
                self.metrics.bytes_read += read;
                self.metrics.faults += 1;
                eclat_obs::trace::instant("spill:faulted_bytes", read);
                Ok(db.into_lists())
            }
            Slot::Empty => panic!("class {id} taken twice (or never inserted)"),
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort cleanup: the store owns its directory.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mining_types::Tid;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eclat-spill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn lists(seed: u32, n: usize) -> Vec<TidList> {
        (0..n)
            .map(|i| {
                TidList::from_sorted((0..(i + 2) as u32).map(|t| Tid(seed * 100 + t)).collect())
            })
            .collect()
    }

    #[test]
    fn generous_budget_never_touches_disk() {
        let dir = tempdir("ram");
        let mut s = SpillStore::create(&dir, u64::MAX, 3).unwrap();
        for id in 0..3 {
            s.insert(id, lists(id as u32, 4)).unwrap();
        }
        assert!(s.resident_bytes() > 0);
        for id in (0..3).rev() {
            assert_eq!(s.take(id).unwrap(), lists(id as u32, 4));
        }
        assert_eq!(s.metrics(), SpillMetrics::default());
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn zero_budget_spills_every_class_and_faults_round_trip() {
        let dir = tempdir("zero");
        let mut s = SpillStore::create(&dir, 0, 4).unwrap();
        for id in 0..4 {
            s.insert(id, lists(id as u32, id + 1)).unwrap();
            assert_eq!(s.resident_bytes(), 0, "budget 0 keeps nothing resident");
        }
        let m = s.metrics();
        assert_eq!(m.classes_spilled, 4);
        assert!(m.bytes_written > 0);
        for id in 0..4 {
            assert_eq!(s.take(id).unwrap(), lists(id as u32, id + 1));
        }
        let m = s.metrics();
        assert_eq!(m.faults, 4);
        assert_eq!(m.bytes_read, m.bytes_written, "symmetric codec");
    }

    #[test]
    fn eviction_is_insertion_ordered_and_partial() {
        // Budget fits roughly two of the three classes: the oldest one
        // spills, the newer ones stay resident.
        let a = lists(1, 3);
        let per_class = SpillStore::list_bytes(&a);
        let dir = tempdir("lru");
        let mut s = SpillStore::create(&dir, per_class * 2, 3).unwrap();
        s.insert(0, lists(1, 3)).unwrap();
        s.insert(1, lists(2, 3)).unwrap();
        assert_eq!(s.metrics().classes_spilled, 0);
        s.insert(2, lists(3, 3)).unwrap();
        assert_eq!(s.metrics().classes_spilled, 1, "oldest class evicted");
        assert_eq!(s.resident_bytes(), per_class * 2);
        // Class 0 faults from disk, 1 and 2 come from memory.
        assert_eq!(s.take(0).unwrap(), lists(1, 3));
        assert_eq!(s.metrics().faults, 1);
        assert_eq!(s.take(1).unwrap(), lists(2, 3));
        assert_eq!(s.take(2).unwrap(), lists(3, 3));
        assert_eq!(s.metrics().faults, 1, "residents are not faults");
    }

    #[test]
    fn fault_respill_cycle_keeps_accounting_exact() {
        // A class that is spilled, faulted back, re-inserted, and spilled
        // again must not double-count bytes anywhere: `resident_bytes`
        // must stay within the budget after every operation and return to
        // exactly zero once everything is taken, and the lifetime
        // counters must grow by exactly one spill/fault per cycle.
        let class = lists(1, 3);
        let class_bytes = SpillStore::list_bytes(&class);
        let dir = tempdir("cycle");
        // Budget one byte short of the class: every insert self-evicts,
        // every take is a fault — a pure fault→respill loop.
        let mut s = SpillStore::create(&dir, class_bytes - 1, 1).unwrap();
        s.insert(0, class.clone()).unwrap();
        assert_eq!(s.resident_bytes(), 0, "class self-evicts on insert");
        assert_eq!(s.metrics().classes_spilled, 1);
        let first_written = s.metrics().bytes_written;
        assert!(first_written > 0);

        // Fault → re-insert → re-evict, three times round.
        for cycle in 1..=3u64 {
            let back = s.take(0).unwrap();
            assert_eq!(back, class, "fault returns the exact lists (cycle {cycle})");
            assert_eq!(s.metrics().faults, cycle);
            assert_eq!(
                s.resident_bytes(),
                0,
                "faulted lists belong to the caller, not the resident set"
            );
            assert_eq!(
                s.metrics().bytes_read,
                first_written * cycle,
                "each fault reads the file once"
            );
            s.insert(0, back).unwrap();
            assert!(
                s.resident_bytes() <= s.budget_bytes(),
                "re-insert must re-evict down to the budget (cycle {cycle})"
            );
            assert_eq!(
                s.metrics().classes_spilled,
                1 + cycle,
                "exactly one respill per cycle"
            );
            assert_eq!(
                s.metrics().bytes_written,
                first_written * (1 + cycle),
                "respill writes the class's bytes once, not twice"
            );
        }

        // Drain and verify the books close at zero.
        assert_eq!(s.take(0).unwrap(), class);
        assert_eq!(s.resident_bytes(), 0, "accounting returns to zero");
        assert_eq!(s.metrics().faults, 4);
    }

    #[test]
    fn empty_tidlists_survive_the_round_trip() {
        let dir = tempdir("empty");
        let mut s = SpillStore::create(&dir, 0, 1).unwrap();
        let mixed = vec![TidList::new(), TidList::of(&[7]), TidList::new()];
        s.insert(0, mixed.clone()).unwrap();
        assert_eq!(s.take(0).unwrap(), mixed);
    }

    #[test]
    fn drop_removes_the_directory() {
        let dir = tempdir("drop");
        {
            let mut s = SpillStore::create(&dir, 0, 1).unwrap();
            s.insert(0, lists(0, 2)).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "store cleans up its directory on drop");
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let dir = tempdir("double");
        let mut s = SpillStore::create(&dir, u64::MAX, 1).unwrap();
        s.insert(0, lists(0, 2)).unwrap();
        let _ = s.take(0);
        let _ = s.take(0);
    }
}
