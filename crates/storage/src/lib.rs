//! Database layouts and storage for association mining.
//!
//! §4.2 of the paper contrasts the **horizontal** layout (each TID followed
//! by its items — what Apriori and Count Distribution scan every
//! iteration) with the **vertical** / inverted layout (each item followed
//! by its tid-list — what Eclat switches to after `L2`). This crate
//! provides both, the equal-sized **block partitioning** of §3 ("the
//! database is partitioned among all the processors in equal-sized blocks,
//! which reside on the local disk of each processor"), and a binary
//! on-disk format whose byte counts drive the simulated-cluster I/O model.

pub mod binfmt;
pub mod disk;
pub mod horizontal;
pub mod partition;
pub mod seqfmt;
pub mod spill;
pub mod vertical;

pub use disk::PartitionStore;
pub use horizontal::HorizontalDb;
pub use partition::BlockPartition;
pub use spill::{SpillMetrics, SpillStore};
pub use vertical::VerticalDb;
