//! Binary on-disk formats for both layouts.
//!
//! Little-endian `u32` word streams with a small header. All readers and
//! writers work over any `io::Read`/`io::Write` and report the exact byte
//! counts, which the simulated-cluster disk model prices. The `bytes`
//! crate provides the buffer plumbing.

use crate::horizontal::HorizontalDb;
use crate::vertical::VerticalDb;
use bytes::{Buf, BufMut, BytesMut};
use mining_types::ItemId;
use std::io::{self, Read, Write};
use tidlist::TidList;

/// Magic for horizontal files ("ECLH").
pub const MAGIC_HORIZONTAL: u32 = 0x4543_4C48;
/// Magic for vertical files ("ECLV").
pub const MAGIC_VERTICAL: u32 = 0x4543_4C56;
/// Format version.
pub const VERSION: u32 = 1;

/// Serialize a horizontal database. Returns bytes written.
///
/// Layout: `magic, version, num_items, num_transactions:u64`, then per
/// transaction `len:u32, items:u32×len` in tid order.
pub fn write_horizontal<W: Write>(db: &HorizontalDb, w: &mut W) -> io::Result<u64> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32_le(MAGIC_HORIZONTAL);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(db.num_items());
    buf.put_u64_le(db.num_transactions() as u64);
    let mut written = buf.len() as u64;
    w.write_all(&buf)?;
    for (_tid, items) in db.iter() {
        buf.clear();
        buf.put_u32_le(items.len() as u32);
        for &it in items {
            buf.put_u32_le(it.0);
        }
        written += buf.len() as u64;
        w.write_all(&buf)?;
    }
    Ok(written)
}

/// Deserialize a horizontal database. Returns `(db, bytes read)`.
pub fn read_horizontal<R: Read>(r: &mut R) -> io::Result<(HorizontalDb, u64)> {
    let mut header = [0u8; 20];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_HORIZONTAL || version != VERSION {
        return Err(bad_format("not a horizontal database file"));
    }
    let num_items = h.get_u32_le();
    let n = h.get_u64_le() as usize;
    let mut read = header.len() as u64;
    let mut txns = Vec::with_capacity(n);
    let mut word = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut word)?;
        let len = u32::from_le_bytes(word) as usize;
        read += 4;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw)?;
        read += raw.len() as u64;
        let mut items = Vec::with_capacity(len);
        let mut cur = &raw[..];
        for _ in 0..len {
            items.push(ItemId(cur.get_u32_le()));
        }
        txns.push(items);
    }
    Ok((
        HorizontalDb::from_transactions(txns).with_num_items(num_items),
        read,
    ))
}

/// Serialize a vertical database. Returns bytes written.
///
/// Layout: `magic, version, num_items`, then per item
/// `len:u32, tids:u32×len` in item order (empty lists included, so the
/// reader needs no item index).
pub fn write_vertical<W: Write>(db: &VerticalDb, w: &mut W) -> io::Result<u64> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32_le(MAGIC_VERTICAL);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(db.num_items());
    let mut written = buf.len() as u64;
    w.write_all(&buf)?;
    for i in 0..db.num_items() {
        let list = db.tidlist(ItemId(i));
        buf.clear();
        buf.put_u32_le(list.len() as u32);
        for &t in list.tids() {
            buf.put_u32_le(t.0);
        }
        written += buf.len() as u64;
        w.write_all(&buf)?;
    }
    Ok(written)
}

/// Deserialize a vertical database. Returns `(db, bytes read)`.
pub fn read_vertical<R: Read>(r: &mut R) -> io::Result<(VerticalDb, u64)> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_VERTICAL || version != VERSION {
        return Err(bad_format("not a vertical database file"));
    }
    let num_items = h.get_u32_le();
    let mut read = header.len() as u64;
    let mut lists = Vec::with_capacity(num_items as usize);
    let mut word = [0u8; 4];
    for _ in 0..num_items {
        r.read_exact(&mut word)?;
        let len = u32::from_le_bytes(word) as usize;
        read += 4;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw)?;
        read += raw.len() as u64;
        let mut tids = Vec::with_capacity(len);
        let mut cur = &raw[..];
        for _ in 0..len {
            tids.push(mining_types::Tid(cur.get_u32_le()));
        }
        lists.push(TidList::from_sorted(tids));
    }
    Ok((VerticalDb::from_lists(lists), read))
}

fn bad_format(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[1, 3], &[0, 1, 2], &[], &[3]])
    }

    #[test]
    fn horizontal_round_trip() {
        let db = sample();
        let mut buf = Vec::new();
        let written = write_horizontal(&db, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        let (back, read) = read_horizontal(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, db);
    }

    #[test]
    fn horizontal_byte_size_matches_model() {
        // The model in HorizontalDb::byte_size excludes the 20-byte header
        // (it prices the *data* scan); the file adds exactly the header.
        let db = sample();
        let mut buf = Vec::new();
        let written = write_horizontal(&db, &mut buf).unwrap();
        assert_eq!(written, db.byte_size() + 20);
    }

    #[test]
    fn vertical_round_trip() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        let written = write_vertical(&v, &mut buf).unwrap();
        let (back, read) = read_vertical(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, v);
    }

    #[test]
    fn vertical_byte_size_matches_model() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        let written = write_vertical(&v, &mut buf).unwrap();
        assert_eq!(written, v.byte_size() + 12);
    }

    #[test]
    fn wrong_magic_rejected() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        write_vertical(&v, &mut buf).unwrap();
        let err = read_horizontal(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_horizontal(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_horizontal(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_database_round_trips() {
        let db = HorizontalDb::of(&[]);
        let mut buf = Vec::new();
        write_horizontal(&db, &mut buf).unwrap();
        let (back, _) = read_horizontal(&mut buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }
}
