//! Binary on-disk formats for both layouts.
//!
//! Little-endian `u32` word streams with a small header. All readers and
//! writers work over any `io::Read`/`io::Write` and report the exact byte
//! counts, which the simulated-cluster disk model prices. The `bytes`
//! crate provides the buffer plumbing.

use crate::horizontal::HorizontalDb;
use crate::vertical::VerticalDb;
use bytes::{Buf, BufMut, BytesMut};
use mining_types::{FrequentSet, ItemId, Itemset};
use std::io::{self, Read, Write};
use tidlist::TidList;

/// Magic for horizontal files ("ECLH").
pub const MAGIC_HORIZONTAL: u32 = 0x4543_4C48;
/// Magic for vertical files ("ECLV").
pub const MAGIC_VERTICAL: u32 = 0x4543_4C56;
/// Magic for mined-result snapshot files ("ECLR").
pub const MAGIC_RESULTS: u32 = 0x4543_4C52;
/// Format version.
pub const VERSION: u32 = 1;
/// Current results-snapshot version. v2 extends the v1 header with a
/// generation counter and a feature bitmask; [`read_results`] still
/// accepts v1 files (generation 0, no features).
pub const RESULTS_VERSION: u32 = 2;
/// Feature bits written into v2 snapshot headers. None are defined yet;
/// readers reject snapshots carrying unknown bits instead of
/// misdecoding them.
pub const RESULTS_FEATURES: u32 = 0;

/// Serialize a horizontal database. Returns bytes written.
///
/// Layout: `magic, version, num_items, num_transactions:u64`, then per
/// transaction `len:u32, items:u32×len` in tid order.
pub fn write_horizontal<W: Write>(db: &HorizontalDb, w: &mut W) -> io::Result<u64> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32_le(MAGIC_HORIZONTAL);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(db.num_items());
    buf.put_u64_le(db.num_transactions() as u64);
    let mut written = buf.len() as u64;
    w.write_all(&buf)?;
    for (_tid, items) in db.iter() {
        buf.clear();
        buf.put_u32_le(items.len() as u32);
        for &it in items {
            buf.put_u32_le(it.0);
        }
        written += buf.len() as u64;
        w.write_all(&buf)?;
    }
    Ok(written)
}

/// Deserialize a horizontal database. Returns `(db, bytes read)`.
pub fn read_horizontal<R: Read>(r: &mut R) -> io::Result<(HorizontalDb, u64)> {
    let mut header = [0u8; 20];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_HORIZONTAL || version != VERSION {
        return Err(bad_format("not a horizontal database file"));
    }
    let num_items = h.get_u32_le();
    let n = h.get_u64_le() as usize;
    let mut read = header.len() as u64;
    let mut txns = Vec::with_capacity(n);
    let mut word = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut word)?;
        let len = u32::from_le_bytes(word) as usize;
        read += 4;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw)?;
        read += raw.len() as u64;
        let mut items = Vec::with_capacity(len);
        let mut cur = &raw[..];
        for _ in 0..len {
            items.push(ItemId(cur.get_u32_le()));
        }
        txns.push(items);
    }
    Ok((
        HorizontalDb::from_transactions(txns).with_num_items(num_items),
        read,
    ))
}

/// Serialize a vertical database. Returns bytes written.
///
/// Layout: `magic, version, num_items`, then per item
/// `len:u32, tids:u32×len` in item order (empty lists included, so the
/// reader needs no item index).
pub fn write_vertical<W: Write>(db: &VerticalDb, w: &mut W) -> io::Result<u64> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32_le(MAGIC_VERTICAL);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(db.num_items());
    let mut written = buf.len() as u64;
    w.write_all(&buf)?;
    for i in 0..db.num_items() {
        let list = db.tidlist(ItemId(i));
        buf.clear();
        buf.put_u32_le(list.len() as u32);
        for &t in list.tids() {
            buf.put_u32_le(t.0);
        }
        written += buf.len() as u64;
        w.write_all(&buf)?;
    }
    Ok(written)
}

/// Deserialize a vertical database. Returns `(db, bytes read)`.
pub fn read_vertical<R: Read>(r: &mut R) -> io::Result<(VerticalDb, u64)> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_VERTICAL || version != VERSION {
        return Err(bad_format("not a vertical database file"));
    }
    let num_items = h.get_u32_le();
    let mut read = header.len() as u64;
    let mut lists = Vec::with_capacity(num_items as usize);
    let mut word = [0u8; 4];
    for _ in 0..num_items {
        r.read_exact(&mut word)?;
        let len = u32::from_le_bytes(word) as usize;
        read += 4;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw)?;
        read += raw.len() as u64;
        let mut tids = Vec::with_capacity(len);
        let mut cur = &raw[..];
        for _ in 0..len {
            tids.push(mining_types::Tid(cur.get_u32_le()));
        }
        lists.push(TidList::from_sorted(tids));
    }
    Ok((VerticalDb::from_lists(lists), read))
}

/// An association rule in storage form — a mirror of the miner's rule
/// type with plain fields, so this crate stays independent of the rule
/// generator. Callers map to/from their rule type field by field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleRecord {
    /// Left-hand side.
    pub antecedent: Itemset,
    /// Right-hand side.
    pub consequent: Itemset,
    /// Support count of antecedent ∪ consequent.
    pub support: u32,
    /// Support count of the antecedent alone.
    pub antecedent_support: u32,
    /// Support count of the consequent alone.
    pub consequent_support: u32,
}

/// A persisted mining result: everything a query server needs to boot
/// without re-mining.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultsSnapshot {
    /// Transactions in the mined database (denominator for supports).
    pub num_transactions: u32,
    /// The mined frequent itemsets.
    pub frequent: FrequentSet,
    /// The generated rules.
    pub rules: Vec<RuleRecord>,
    /// Producer generation counter (v2 header field). A streaming miner
    /// bumps this every batch so a serving process can skip re-loading a
    /// snapshot it has already seen; v1 files read back as 0.
    pub generation: u64,
}

/// FNV-1a 64 over the payload — the snapshot header's checksum. Cheap,
/// dependency-free, and plenty to catch truncation and bit rot.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_itemset(buf: &mut BytesMut, is: &Itemset) {
    buf.put_u32_le(is.len() as u32);
    for &it in is.items() {
        buf.put_u32_le(it.0);
    }
}

fn get_itemset(cur: &mut &[u8]) -> io::Result<Itemset> {
    if cur.remaining() < 4 {
        return Err(bad_format("truncated itemset length"));
    }
    let n = cur.get_u32_le() as usize;
    if cur.remaining() < n * 4 {
        return Err(bad_format("truncated itemset"));
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(ItemId(cur.get_u32_le()));
    }
    Ok(Itemset::from_sorted(items))
}

fn results_payload(snap: &ResultsSnapshot) -> BytesMut {
    let mut payload = BytesMut::with_capacity(4096);
    payload.put_u32_le(snap.num_transactions);
    let sorted = snap.frequent.sorted();
    payload.put_u32_le(sorted.len() as u32);
    for counted in &sorted {
        put_itemset(&mut payload, &counted.itemset);
        payload.put_u32_le(counted.support);
    }
    payload.put_u32_le(snap.rules.len() as u32);
    for rule in &snap.rules {
        put_itemset(&mut payload, &rule.antecedent);
        put_itemset(&mut payload, &rule.consequent);
        payload.put_u32_le(rule.support);
        payload.put_u32_le(rule.antecedent_support);
        payload.put_u32_le(rule.consequent_support);
    }
    payload
}

/// Serialize a mined-result snapshot (current v2 layout). Returns bytes
/// written.
///
/// Layout: `magic, version=2, checksum:u64, payload_len:u64,
/// generation:u64, features:u32`, then the payload: `num_transactions,
/// num_itemsets`, per itemset `len:u32, items:u32×len, support:u32` (in
/// [`FrequentSet::sorted`] order, so files are deterministic), then
/// `num_rules` and per rule the two itemsets and three support counts.
/// The checksum is FNV-1a 64 over the payload; [`read_results`]
/// verifies it before decoding.
pub fn write_results<W: Write>(snap: &ResultsSnapshot, w: &mut W) -> io::Result<u64> {
    let payload = results_payload(snap);
    let mut header = BytesMut::with_capacity(36);
    header.put_u32_le(MAGIC_RESULTS);
    header.put_u32_le(RESULTS_VERSION);
    header.put_u64_le(fnv1a64(&payload));
    header.put_u64_le(payload.len() as u64);
    header.put_u64_le(snap.generation);
    header.put_u32_le(RESULTS_FEATURES);
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok((header.len() + payload.len()) as u64)
}

/// Serialize a snapshot in the legacy v1 layout (24-byte header, no
/// generation/features). Kept so the v1 read path stays covered by a
/// bit-exact fixture; new code should use [`write_results`].
pub fn write_results_v1<W: Write>(snap: &ResultsSnapshot, w: &mut W) -> io::Result<u64> {
    let payload = results_payload(snap);
    let mut header = BytesMut::with_capacity(24);
    header.put_u32_le(MAGIC_RESULTS);
    header.put_u32_le(VERSION);
    header.put_u64_le(fnv1a64(&payload));
    header.put_u64_le(payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok((header.len() + payload.len()) as u64)
}

/// Read just enough of a results snapshot to learn `(version,
/// generation, payload checksum)` — the cheap poll a hot-reloading
/// server runs before deciding whether to decode the whole file. The
/// checksum distinguishes rewrites that reuse a generation number; v1
/// headers report generation 0.
///
/// # Errors
/// `InvalidData` on wrong magic, an unknown version, or unknown feature
/// bits; plain I/O errors (including `UnexpectedEof` on a torn write)
/// pass through.
pub fn peek_results_header<R: Read>(r: &mut R) -> io::Result<(u32, u64, u64)> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_RESULTS {
        return Err(bad_format("not a results snapshot file"));
    }
    let checksum = h.get_u64_le();
    match version {
        VERSION => Ok((version, 0, checksum)),
        RESULTS_VERSION => {
            let mut ext = [0u8; 12];
            r.read_exact(&mut ext)?;
            let mut e = &ext[..];
            let generation = e.get_u64_le();
            let features = e.get_u32_le();
            if features != 0 {
                return Err(bad_format("results snapshot has unknown feature bits"));
            }
            Ok((version, generation, checksum))
        }
        _ => Err(bad_format("unsupported results snapshot version")),
    }
}

/// Deserialize a mined-result snapshot, verifying the checksum. Accepts
/// both the current v2 layout and legacy v1 files (which decode with
/// `generation: 0`).
///
/// # Errors
/// `InvalidData` on wrong magic/version, unknown feature bits, a
/// checksum mismatch (file corrupted or truncated), or malformed
/// payload structure.
pub fn read_results<R: Read>(r: &mut R) -> io::Result<(ResultsSnapshot, u64)> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_RESULTS || (version != VERSION && version != RESULTS_VERSION) {
        return Err(bad_format("not a results snapshot file"));
    }
    let checksum = h.get_u64_le();
    let payload_len = h.get_u64_le() as usize;
    let mut header_len = header.len();
    let mut generation = 0u64;
    if version == RESULTS_VERSION {
        let mut ext = [0u8; 12];
        r.read_exact(&mut ext)?;
        let mut e = &ext[..];
        generation = e.get_u64_le();
        let features = e.get_u32_le();
        if features != 0 {
            return Err(bad_format("results snapshot has unknown feature bits"));
        }
        header_len += ext.len();
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(bad_format("results snapshot checksum mismatch"));
    }

    let mut cur = &payload[..];
    let err = || bad_format("truncated results payload");
    if cur.remaining() < 8 {
        return Err(err());
    }
    let num_transactions = cur.get_u32_le();
    let num_itemsets = cur.get_u32_le() as usize;
    let mut frequent = FrequentSet::new();
    for _ in 0..num_itemsets {
        let itemset = get_itemset(&mut cur)?;
        if cur.remaining() < 4 {
            return Err(err());
        }
        frequent.insert(itemset, cur.get_u32_le());
    }
    if cur.remaining() < 4 {
        return Err(err());
    }
    let num_rules = cur.get_u32_le() as usize;
    let mut rules = Vec::with_capacity(num_rules);
    for _ in 0..num_rules {
        let antecedent = get_itemset(&mut cur)?;
        let consequent = get_itemset(&mut cur)?;
        if cur.remaining() < 12 {
            return Err(err());
        }
        rules.push(RuleRecord {
            antecedent,
            consequent,
            support: cur.get_u32_le(),
            antecedent_support: cur.get_u32_le(),
            consequent_support: cur.get_u32_le(),
        });
    }
    if cur.remaining() > 0 {
        return Err(bad_format("trailing bytes in results payload"));
    }
    Ok((
        ResultsSnapshot {
            num_transactions,
            frequent,
            rules,
            generation,
        },
        (header_len + payload_len) as u64,
    ))
}

fn bad_format(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[1, 3], &[0, 1, 2], &[], &[3]])
    }

    #[test]
    fn horizontal_round_trip() {
        let db = sample();
        let mut buf = Vec::new();
        let written = write_horizontal(&db, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        let (back, read) = read_horizontal(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, db);
    }

    #[test]
    fn horizontal_byte_size_matches_model() {
        // The model in HorizontalDb::byte_size excludes the 20-byte header
        // (it prices the *data* scan); the file adds exactly the header.
        let db = sample();
        let mut buf = Vec::new();
        let written = write_horizontal(&db, &mut buf).unwrap();
        assert_eq!(written, db.byte_size() + 20);
    }

    #[test]
    fn vertical_round_trip() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        let written = write_vertical(&v, &mut buf).unwrap();
        let (back, read) = read_vertical(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, v);
    }

    #[test]
    fn vertical_byte_size_matches_model() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        let written = write_vertical(&v, &mut buf).unwrap();
        assert_eq!(written, v.byte_size() + 12);
    }

    #[test]
    fn wrong_magic_rejected() {
        let v = VerticalDb::from_horizontal(&sample());
        let mut buf = Vec::new();
        write_vertical(&v, &mut buf).unwrap();
        let err = read_horizontal(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_horizontal(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_horizontal(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_database_round_trips() {
        let db = HorizontalDb::of(&[]);
        let mut buf = Vec::new();
        write_horizontal(&db, &mut buf).unwrap();
        let (back, _) = read_horizontal(&mut buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    fn sample_snapshot() -> ResultsSnapshot {
        let mut frequent = FrequentSet::new();
        frequent.insert(Itemset::single(ItemId(0)), 4);
        frequent.insert(Itemset::single(ItemId(2)), 3);
        frequent.insert(Itemset::pair(ItemId(0), ItemId(2)), 3);
        frequent.insert(Itemset::of(&[0, 1, 2]), 2);
        ResultsSnapshot {
            num_transactions: 5,
            frequent,
            rules: vec![RuleRecord {
                antecedent: Itemset::single(ItemId(0)),
                consequent: Itemset::single(ItemId(2)),
                support: 3,
                antecedent_support: 4,
                consequent_support: 3,
            }],
            generation: 7,
        }
    }

    #[test]
    fn results_round_trip() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        let written = write_results(&snap, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        let (back, read) = read_results(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_results_round_trip() {
        let snap = ResultsSnapshot {
            num_transactions: 0,
            frequent: FrequentSet::new(),
            rules: Vec::new(),
            generation: 0,
        };
        let mut buf = Vec::new();
        write_results(&snap, &mut buf).unwrap();
        let (back, _) = read_results(&mut buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn v1_snapshot_still_reads_with_generation_zero() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        let written = write_results_v1(&snap, &mut buf).unwrap();
        // v1 headers are 12 bytes shorter than v2.
        let mut v2 = Vec::new();
        assert_eq!(write_results(&snap, &mut v2).unwrap(), written + 12);
        let (back, read) = read_results(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back.generation, 0, "v1 files carry no generation");
        assert_eq!(back.frequent, snap.frequent);
        assert_eq!(back.rules, snap.rules);
        assert_eq!(back.num_transactions, snap.num_transactions);
    }

    /// Bit-exact v1 fixture: an empty snapshot serialized by the v1
    /// writer at the time the format was frozen. Guards the read path
    /// against accidental header/layout drift.
    #[test]
    fn v1_fixture_bytes_decode() {
        let fixture: &[u8] = &[
            0x52, 0x4C, 0x43, 0x45, // magic "ECLR" (LE)
            0x01, 0x00, 0x00, 0x00, // version 1
            0xF7, 0xD5, 0xAC, 0xD2, 0x1A, 0xB8, 0xEE, 0x3E, // fnv1a64
            0x0C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // payload len 12
            0x02, 0x00, 0x00, 0x00, // num_transactions 2
            0x00, 0x00, 0x00, 0x00, // num_itemsets 0
            0x00, 0x00, 0x00, 0x00, // num_rules 0
        ];
        let (snap, read) = read_results(&mut &fixture[..]).unwrap();
        assert_eq!(read, fixture.len() as u64);
        assert_eq!(snap.num_transactions, 2);
        assert_eq!(snap.generation, 0);
        assert!(snap.frequent.is_empty() && snap.rules.is_empty());
    }

    #[test]
    fn peek_reads_version_and_generation_cheaply() {
        let snap = sample_snapshot();
        let mut v2 = Vec::new();
        write_results(&snap, &mut v2).unwrap();
        let (version, generation, checksum) = peek_results_header(&mut v2.as_slice()).unwrap();
        assert_eq!((version, generation), (RESULTS_VERSION, 7));
        let mut v1 = Vec::new();
        write_results_v1(&snap, &mut v1).unwrap();
        let (v1_version, v1_generation, v1_checksum) =
            peek_results_header(&mut v1.as_slice()).unwrap();
        assert_eq!((v1_version, v1_generation), (VERSION, 0));
        assert_eq!(checksum, v1_checksum, "same payload, same checksum");
        // A torn write (header cut short) surfaces as UnexpectedEof, not
        // a panic — the poller skips and retries.
        let err = peek_results_header(&mut &v2[..30]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_feature_bits_rejected() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_results(&snap, &mut buf).unwrap();
        buf[32] |= 0x01; // features field (header bytes 32..36)
        let err = read_results(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("feature"), "{err}");
        let err = peek_results_header(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("feature"), "{err}");
    }

    #[test]
    fn unknown_version_rejected() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_results(&snap, &mut buf).unwrap();
        buf[4] = 3; // version field
        assert!(read_results(&mut buf.as_slice()).is_err());
        let err = peek_results_header(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn results_corruption_caught_by_checksum() {
        let mut buf = Vec::new();
        write_results(&sample_snapshot(), &mut buf).unwrap();
        // Flip one bit in the payload; the header checksum must catch it.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_results(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn results_wrong_magic_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_horizontal(&db, &mut buf).unwrap();
        assert!(read_results(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn results_truncation_rejected() {
        let mut buf = Vec::new();
        write_results(&sample_snapshot(), &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_results(&mut buf.as_slice()).is_err());
    }
}
