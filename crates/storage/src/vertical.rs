//! The vertical (inverted) database layout: item → tid-list.

use crate::horizontal::HorizontalDb;
use mining_types::{ItemId, Tid};
use tidlist::TidList;

/// A vertical database: one tid-list per item of the universe.
///
/// §4.2: *"The vertical layout … consists of a list of items, with each
/// item followed by its tid-list."* Items that never occur have empty
/// lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerticalDb {
    lists: Vec<TidList>,
}

impl VerticalDb {
    /// Invert a horizontal database (or one partition block of it).
    ///
    /// Scanning in tid order appends tids in increasing order, so every
    /// list is born sorted — the free sortedness §6.3 relies on.
    pub fn from_horizontal(db: &HorizontalDb) -> VerticalDb {
        Self::from_horizontal_range(db, 0..db.num_transactions())
    }

    /// Invert only the block `range` (a processor's local partition).
    pub fn from_horizontal_range(db: &HorizontalDb, range: std::ops::Range<usize>) -> VerticalDb {
        let mut lists = vec![TidList::new(); db.num_items() as usize];
        for (tid, items) in db.iter_range(range) {
            for &it in items {
                lists[it.index()].push(tid);
            }
        }
        VerticalDb { lists }
    }

    /// Build directly from per-item lists.
    pub fn from_lists(lists: Vec<TidList>) -> VerticalDb {
        VerticalDb { lists }
    }

    /// Decompose back into the per-item lists (inverse of
    /// [`VerticalDb::from_lists`]; the spill store reads classes back
    /// through this).
    pub fn into_lists(self) -> Vec<TidList> {
        self.lists
    }

    /// Append one transaction — the streaming-ingest path. The new `tid`
    /// must be strictly above every tid already present (batches arrive
    /// in tid order, the same §6.3 disjoint ascending ranges the
    /// partition merge relies on), so each touched item's list stays
    /// sorted without any re-sort.
    ///
    /// # Panics
    /// Panics if an item is outside the universe (grow first with
    /// [`VerticalDb::grow_items`]) or `tid` is not above the item's
    /// current last tid.
    pub fn append_transaction(&mut self, tid: Tid, items: &[ItemId]) {
        for &it in items {
            self.lists[it.index()].push(tid);
        }
    }

    /// Widen the item universe to `num_items` (no-op when already at
    /// least that wide). New items start with empty lists, matching how
    /// [`VerticalDb::from_horizontal`] treats never-seen items.
    pub fn grow_items(&mut self, num_items: u32) {
        if (num_items as usize) > self.lists.len() {
            self.lists.resize(num_items as usize, TidList::new());
        }
    }

    /// The tid-list of `item`.
    #[inline]
    pub fn tidlist(&self, item: ItemId) -> &TidList {
        &self.lists[item.index()]
    }

    /// Size of the item universe.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.lists.len() as u32
    }

    /// Iterate `(item, tid-list)` over items with non-empty lists.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &TidList)> {
        self.lists
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i, l)| (ItemId(i as u32), l))
    }

    /// Support (occurrence count) of a single item.
    pub fn item_support(&self, item: ItemId) -> u32 {
        self.lists[item.index()].support()
    }

    /// Bytes of the binary vertical layout: per item a length word plus
    /// one word per tid.
    pub fn byte_size(&self) -> u64 {
        self.lists.iter().map(|l| 4 + l.byte_size()).sum()
    }

    /// Reconstruct the horizontal layout (inverse transform; used to
    /// verify the transformation round-trips).
    pub fn to_horizontal(&self, num_transactions: usize) -> HorizontalDb {
        let mut txns: Vec<Vec<ItemId>> = vec![Vec::new(); num_transactions];
        for (item, list) in self.iter() {
            for &tid in list.tids() {
                txns[tid.index()].push(item);
            }
        }
        // Items were appended in ascending item order, so each transaction
        // is already sorted.
        HorizontalDb::from_transactions(txns).with_num_items(self.num_items())
    }
}

/// Merge per-partition vertical databases (disjoint ascending tid ranges,
/// in partition order) into the global vertical database — the §6.3
/// offset-placement concatenation.
pub fn merge_partitions(parts: &[VerticalDb]) -> VerticalDb {
    assert!(!parts.is_empty(), "need at least one partition");
    let num_items = parts[0].num_items();
    assert!(
        parts.iter().all(|p| p.num_items() == num_items),
        "all partitions must share the item universe"
    );
    let mut lists = vec![TidList::new(); num_items as usize];
    for part in parts {
        for (i, list) in lists.iter_mut().enumerate() {
            list.append_partial(part.tidlist(ItemId(i as u32)));
        }
    }
    VerticalDb { lists }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[1, 3], &[0, 1], &[1, 3], &[2]])
    }

    #[test]
    fn inversion_matches_hand_computation() {
        let v = VerticalDb::from_horizontal(&sample());
        assert_eq!(v.tidlist(ItemId(0)), &TidList::of(&[1]));
        assert_eq!(v.tidlist(ItemId(1)), &TidList::of(&[0, 1, 2]));
        assert_eq!(v.tidlist(ItemId(2)), &TidList::of(&[3]));
        assert_eq!(v.tidlist(ItemId(3)), &TidList::of(&[0, 2]));
        assert_eq!(v.item_support(ItemId(1)), 3);
    }

    #[test]
    fn round_trip_horizontal_vertical_horizontal() {
        let h = sample();
        let v = VerticalDb::from_horizontal(&h);
        let h2 = v.to_horizontal(h.num_transactions());
        assert_eq!(h, h2);
    }

    #[test]
    fn range_inversion_covers_only_the_block() {
        let h = sample();
        let v = VerticalDb::from_horizontal_range(&h, 1..3);
        assert_eq!(v.tidlist(ItemId(1)), &TidList::of(&[1, 2]));
        assert_eq!(v.tidlist(ItemId(2)), &TidList::new());
    }

    #[test]
    fn merge_partitions_equals_whole_inversion() {
        let h = sample();
        let p0 = VerticalDb::from_horizontal_range(&h, 0..2);
        let p1 = VerticalDb::from_horizontal_range(&h, 2..4);
        let merged = merge_partitions(&[p0, p1]);
        assert_eq!(merged, VerticalDb::from_horizontal(&h));
    }

    #[test]
    #[should_panic(expected = "share the item universe")]
    fn merge_rejects_mismatched_universe() {
        let a = VerticalDb::from_lists(vec![TidList::new()]);
        let b = VerticalDb::from_lists(vec![TidList::new(), TidList::new()]);
        merge_partitions(&[a, b]);
    }

    #[test]
    fn iter_skips_empty_lists() {
        let h = HorizontalDb::of(&[&[0, 5]]);
        let v = VerticalDb::from_horizontal(&h);
        let present: Vec<u32> = v.iter().map(|(i, _)| i.0).collect();
        assert_eq!(present, vec![0, 5]);
    }

    #[test]
    fn append_transaction_matches_batch_inversion() {
        let h = sample();
        let mut v = VerticalDb::from_horizontal_range(&h, 0..2);
        for (tid, items) in h.iter_range(2..4) {
            v.append_transaction(tid, items);
        }
        assert_eq!(v, VerticalDb::from_horizontal(&h));
    }

    #[test]
    fn grow_items_adds_empty_lists_only() {
        let h = sample();
        let mut v = VerticalDb::from_horizontal(&h);
        let before = v.clone();
        v.grow_items(2); // already wider — no-op
        assert_eq!(v.num_items(), before.num_items());
        v.grow_items(10);
        assert_eq!(v.num_items(), 10);
        assert_eq!(v.tidlist(ItemId(9)), &TidList::new());
        for i in 0..before.num_items() {
            assert_eq!(v.tidlist(ItemId(i)), before.tidlist(ItemId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn append_transaction_rejects_stale_tid() {
        let h = sample();
        let mut v = VerticalDb::from_horizontal(&h);
        v.append_transaction(Tid(0), &[ItemId(1)]);
    }

    #[test]
    fn byte_size_counts_headers_and_tids() {
        let h = HorizontalDb::of(&[&[0], &[0, 1]]);
        let v = VerticalDb::from_horizontal(&h);
        // item 0: 4 + 8; item 1: 4 + 4 → 20
        assert_eq!(v.byte_size(), 20);
    }
}
