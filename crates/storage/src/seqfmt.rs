//! Binary on-disk formats for the sequence-mining workload.
//!
//! Same conventions as [`crate::binfmt`] — little-endian `u32` word
//! streams behind a small magic+version header, byte counts returned
//! for the disk model — but over plain nested-`Vec` shapes instead of
//! storage types: the sequence crate sits above this one in the
//! dependency graph, so the container speaks `(eid, items)` event lists
//! and `(pattern elements, support)` rows that both sides convert
//! to/from their own types.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Magic for sequence-database files ("ECLS").
pub const MAGIC_SEQ: u32 = 0x4543_4C53;
/// Magic for mined-sequence snapshot files ("ECLQ").
pub const MAGIC_SEQ_RESULTS: u32 = 0x4543_4C51;
/// Format version for both containers.
pub const SEQ_VERSION: u32 = 1;

/// One sequence: its time-ordered `(eid, items)` events.
pub type RawSequence = Vec<(u32, Vec<u32>)>;
/// One mined pattern: its itemset elements plus the support count.
pub type RawSeqPattern = (Vec<Vec<u32>>, u32);

/// Serialize a sequence database. Returns bytes written.
///
/// Layout: `magic, version, num_items, num_sequences:u64`, then per
/// sequence `num_events:u32` and per event `eid:u32, len:u32,
/// items:u32×len` in sid order.
pub fn write_seq_db<W: Write>(
    sequences: &[RawSequence],
    num_items: u32,
    w: &mut W,
) -> io::Result<u64> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32_le(MAGIC_SEQ);
    buf.put_u32_le(SEQ_VERSION);
    buf.put_u32_le(num_items);
    buf.put_u64_le(sequences.len() as u64);
    let mut written = buf.len() as u64;
    w.write_all(&buf)?;
    for seq in sequences {
        buf.clear();
        buf.put_u32_le(seq.len() as u32);
        for (eid, items) in seq {
            buf.put_u32_le(*eid);
            buf.put_u32_le(items.len() as u32);
            for &it in items {
                buf.put_u32_le(it);
            }
        }
        written += buf.len() as u64;
        w.write_all(&buf)?;
    }
    Ok(written)
}

/// Deserialize a sequence database. Returns
/// `((sequences, num_items), bytes read)`.
pub fn read_seq_db<R: Read>(r: &mut R) -> io::Result<((Vec<RawSequence>, u32), u64)> {
    let mut header = [0u8; 20];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_SEQ || version != SEQ_VERSION {
        return Err(bad_format("not a sequence database file"));
    }
    let num_items = h.get_u32_le();
    let n = h.get_u64_le() as usize;
    let mut read = header.len() as u64;
    let mut word = [0u8; 4];
    let mut next_u32 = |r: &mut R, read: &mut u64| -> io::Result<u32> {
        r.read_exact(&mut word)?;
        *read += 4;
        Ok(u32::from_le_bytes(word))
    };
    let mut sequences = Vec::with_capacity(n);
    for _ in 0..n {
        let num_events = next_u32(r, &mut read)? as usize;
        let mut seq: RawSequence = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let eid = next_u32(r, &mut read)?;
            let len = next_u32(r, &mut read)? as usize;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(next_u32(r, &mut read)?);
            }
            seq.push((eid, items));
        }
        sequences.push(seq);
    }
    Ok(((sequences, num_items), read))
}

/// FNV-1a 64 over the payload (same checksum as the itemset snapshot).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serialize a mined-sequence snapshot. Returns bytes written.
///
/// Layout: `magic, version, checksum:u64, payload_len:u64`, then the
/// payload: `num_sequences:u32, num_patterns:u32`, per pattern
/// `num_elems:u32`, per element `len:u32, items:u32×len`, then
/// `support:u32`. Callers pass patterns in canonical order so files are
/// deterministic; the checksum is FNV-1a 64 over the payload.
pub fn write_seq_results<W: Write>(
    num_sequences: u32,
    patterns: &[RawSeqPattern],
    w: &mut W,
) -> io::Result<u64> {
    let mut payload = BytesMut::with_capacity(4096);
    payload.put_u32_le(num_sequences);
    payload.put_u32_le(patterns.len() as u32);
    for (elems, support) in patterns {
        payload.put_u32_le(elems.len() as u32);
        for elem in elems {
            payload.put_u32_le(elem.len() as u32);
            for &it in elem {
                payload.put_u32_le(it);
            }
        }
        payload.put_u32_le(*support);
    }
    let mut header = BytesMut::with_capacity(24);
    header.put_u32_le(MAGIC_SEQ_RESULTS);
    header.put_u32_le(SEQ_VERSION);
    header.put_u64_le(fnv1a64(&payload));
    header.put_u64_le(payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok((header.len() + payload.len()) as u64)
}

/// Deserialize a mined-sequence snapshot, verifying the checksum.
/// Returns `((num_sequences, patterns), bytes read)`.
///
/// # Errors
/// `InvalidData` on wrong magic/version, a checksum mismatch, or a
/// malformed payload; plain I/O errors pass through.
pub fn read_seq_results<R: Read>(r: &mut R) -> io::Result<((u32, Vec<RawSeqPattern>), u64)> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    let version = h.get_u32_le();
    if magic != MAGIC_SEQ_RESULTS || version != SEQ_VERSION {
        return Err(bad_format("not a sequence snapshot file"));
    }
    let checksum = h.get_u64_le();
    let payload_len = h.get_u64_le() as usize;
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(bad_format("sequence snapshot checksum mismatch"));
    }

    let mut cur = &payload[..];
    let err = || bad_format("truncated sequence snapshot payload");
    let next_u32 = |cur: &mut &[u8]| -> io::Result<u32> {
        if cur.remaining() < 4 {
            return Err(err());
        }
        Ok(cur.get_u32_le())
    };
    let num_sequences = next_u32(&mut cur)?;
    let num_patterns = next_u32(&mut cur)? as usize;
    let mut patterns = Vec::with_capacity(num_patterns);
    for _ in 0..num_patterns {
        let num_elems = next_u32(&mut cur)? as usize;
        let mut elems = Vec::with_capacity(num_elems);
        for _ in 0..num_elems {
            let len = next_u32(&mut cur)? as usize;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(next_u32(&mut cur)?);
            }
            elems.push(items);
        }
        let support = next_u32(&mut cur)?;
        patterns.push((elems, support));
    }
    if cur.remaining() > 0 {
        return Err(bad_format("trailing bytes in sequence snapshot payload"));
    }
    Ok((
        (num_sequences, patterns),
        (header.len() + payload_len) as u64,
    ))
}

fn bad_format(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Vec<RawSequence> {
        vec![
            vec![(1, vec![1, 2]), (3, vec![3]), (9, vec![1])],
            vec![(2, vec![2])],
            vec![],
        ]
    }

    fn sample_patterns() -> Vec<RawSeqPattern> {
        vec![
            (vec![vec![2]], 3),
            (vec![vec![1, 2], vec![3]], 2),
            (vec![vec![2], vec![3], vec![1]], 1),
        ]
    }

    #[test]
    fn seq_db_round_trip() {
        let db = sample_db();
        let mut buf = Vec::new();
        let written = write_seq_db(&db, 4, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        let ((back, num_items), read) = read_seq_db(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, db);
        assert_eq!(num_items, 4);
    }

    #[test]
    fn empty_seq_db_round_trips() {
        let mut buf = Vec::new();
        write_seq_db(&[], 0, &mut buf).unwrap();
        let ((back, num_items), _) = read_seq_db(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(num_items, 0);
    }

    #[test]
    fn seq_results_round_trip() {
        let patterns = sample_patterns();
        let mut buf = Vec::new();
        let written = write_seq_results(3, &patterns, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        let ((n, back), read) = read_seq_results(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(n, 3);
        assert_eq!(back, patterns);
    }

    #[test]
    fn empty_seq_results_round_trip() {
        let mut buf = Vec::new();
        write_seq_results(0, &[], &mut buf).unwrap();
        let ((n, back), _) = read_seq_results(&mut buf.as_slice()).unwrap();
        assert_eq!(n, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn magics_do_not_cross() {
        let mut db = Vec::new();
        write_seq_db(&sample_db(), 4, &mut db).unwrap();
        assert!(read_seq_results(&mut db.as_slice()).is_err());
        let mut snap = Vec::new();
        write_seq_results(3, &sample_patterns(), &mut snap).unwrap();
        assert!(read_seq_db(&mut snap.as_slice()).is_err());
        // Nor with the itemset containers.
        assert!(crate::binfmt::read_horizontal(&mut db.as_slice()).is_err());
        assert!(crate::binfmt::read_results(&mut snap.as_slice()).is_err());
    }

    #[test]
    fn seq_results_corruption_caught_by_checksum() {
        let mut buf = Vec::new();
        write_seq_results(3, &sample_patterns(), &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_seq_results(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_rejected() {
        let mut db = Vec::new();
        write_seq_db(&sample_db(), 4, &mut db).unwrap();
        db.truncate(db.len() - 3);
        assert!(read_seq_db(&mut db.as_slice()).is_err());
        let mut snap = Vec::new();
        write_seq_results(3, &sample_patterns(), &mut snap).unwrap();
        snap.truncate(snap.len() - 2);
        assert!(read_seq_results(&mut snap.as_slice()).is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = Vec::new();
        write_seq_db(&sample_db(), 4, &mut buf).unwrap();
        buf[4] = 9;
        assert!(read_seq_db(&mut buf.as_slice()).is_err());
    }
}
