//! Equal-sized block partitioning of the database across processors.
//!
//! §3: *"All the parallel algorithms assume that the database is
//! partitioned among all the processors in equal-sized blocks, which
//! reside on the local disk of each processor."* Block boundaries are by
//! transaction count; processor `p` owns the contiguous tid range
//! `[start(p), start(p+1))`, and ranges increase with `p` — the property
//! the tid-list offset placement of §6.3 depends on.

use mining_types::Tid;
use std::ops::Range;

/// A block partition of `n` transactions over `p` processors.
///
/// ```
/// use dbstore::BlockPartition;
/// use mining_types::Tid;
/// let p = BlockPartition::equal_blocks(10, 3);
/// assert_eq!(p.block(0), 0..4);
/// assert_eq!(p.owner(Tid(7)), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    /// `starts[p]..starts[p+1]` is processor `p`'s block; length `p + 1`.
    starts: Vec<usize>,
}

impl BlockPartition {
    /// Split `num_transactions` into `num_processors` blocks whose sizes
    /// differ by at most one (the first `n mod p` blocks get the extra
    /// transaction).
    ///
    /// # Panics
    /// Panics if `num_processors == 0`.
    pub fn equal_blocks(num_transactions: usize, num_processors: usize) -> BlockPartition {
        assert!(num_processors > 0, "need at least one processor");
        let base = num_transactions / num_processors;
        let extra = num_transactions % num_processors;
        let mut starts = Vec::with_capacity(num_processors + 1);
        let mut acc = 0usize;
        starts.push(0);
        for p in 0..num_processors {
            acc += base + usize::from(p < extra);
            starts.push(acc);
        }
        debug_assert_eq!(acc, num_transactions);
        BlockPartition { starts }
    }

    /// Number of processors.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Processor `p`'s tid range.
    #[inline]
    pub fn block(&self, p: usize) -> Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }

    /// Number of transactions in processor `p`'s block.
    #[inline]
    pub fn block_len(&self, p: usize) -> usize {
        self.starts[p + 1] - self.starts[p]
    }

    /// Which processor owns `tid`.
    ///
    /// # Panics
    /// Panics if `tid` is out of range.
    pub fn owner(&self, tid: Tid) -> usize {
        let t = tid.index();
        assert!(t < self.num_transactions(), "tid {t} out of range");
        // first start strictly greater than t, minus one
        self.starts.partition_point(|&s| s <= t) - 1
    }

    /// Iterate `(processor, range)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.num_processors()).map(move |p| (p, self.block(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = BlockPartition::equal_blocks(100, 4);
        assert_eq!(p.num_processors(), 4);
        assert_eq!(p.block(0), 0..25);
        assert_eq!(p.block(3), 75..100);
        assert!((0..4).all(|i| p.block_len(i) == 25));
    }

    #[test]
    fn uneven_split_differs_by_at_most_one() {
        let p = BlockPartition::equal_blocks(10, 3);
        assert_eq!(p.block(0), 0..4);
        assert_eq!(p.block(1), 4..7);
        assert_eq!(p.block(2), 7..10);
        let lens: Vec<usize> = (0..3).map(|i| p.block_len(i)).collect();
        assert_eq!(lens.iter().max().unwrap() - lens.iter().min().unwrap(), 1);
    }

    #[test]
    fn blocks_cover_everything_disjointly() {
        for (n, procs) in [(0usize, 3usize), (1, 5), (17, 4), (1000, 7)] {
            let p = BlockPartition::equal_blocks(n, procs);
            let mut covered = 0usize;
            let mut last_end = 0usize;
            for (i, r) in p.iter() {
                assert_eq!(r.start, last_end, "block {i} contiguous");
                covered += r.len();
                last_end = r.end;
            }
            assert_eq!(covered, n);
            assert_eq!(p.num_transactions(), n);
        }
    }

    #[test]
    fn owner_is_consistent_with_blocks() {
        let p = BlockPartition::equal_blocks(10, 3);
        for proc in 0..3 {
            for t in p.block(proc) {
                assert_eq!(p.owner(Tid(t as u32)), proc);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_rejects_out_of_range() {
        BlockPartition::equal_blocks(10, 2).owner(Tid(10));
    }

    #[test]
    fn more_processors_than_transactions() {
        let p = BlockPartition::equal_blocks(2, 5);
        let lens: Vec<usize> = (0..5).map(|i| p.block_len(i)).collect();
        assert_eq!(lens, vec![1, 1, 0, 0, 0]);
        assert_eq!(p.owner(Tid(1)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        BlockPartition::equal_blocks(10, 0);
    }
}
