//! The horizontal (row-oriented) database layout.

use mining_types::{ItemId, Tid};

/// An in-memory horizontal transaction database: transaction `t` is the
/// sorted item list at index `t`; its TID is its index.
///
/// Tids being dense `0..n` in database order is what makes the block
/// partitioning of §3 produce disjoint, monotonically increasing tid
/// ranges per processor — the property §6.3 exploits to place incoming
/// partial tid-lists at precomputed offsets with no sorting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HorizontalDb {
    transactions: Vec<Vec<ItemId>>,
    num_items: u32,
}

impl HorizontalDb {
    /// Build from transaction item lists. Each transaction is sorted and
    /// deduplicated; `num_items` is inferred as `max item + 1`.
    pub fn from_transactions(mut transactions: Vec<Vec<ItemId>>) -> HorizontalDb {
        let mut num_items = 0u32;
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&last) = t.last() {
                num_items = num_items.max(last.0 + 1);
            }
        }
        HorizontalDb {
            transactions,
            num_items,
        }
    }

    /// Build from raw `u32` item lists (test/example convenience).
    pub fn of(raw: &[&[u32]]) -> HorizontalDb {
        Self::from_transactions(
            raw.iter()
                .map(|t| t.iter().copied().map(ItemId).collect())
                .collect(),
        )
    }

    /// Declare a larger item universe than the inferred one (items that
    /// never occur). Needed when partitions of one database must agree on
    /// the universe size for the triangular-count sum-reduction.
    pub fn with_num_items(mut self, num_items: u32) -> HorizontalDb {
        assert!(
            num_items >= self.num_items,
            "cannot shrink the item universe below the max occurring item"
        );
        self.num_items = num_items;
        self
    }

    /// `|D|` — number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Size of the item universe (`N`).
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The sorted items of transaction `tid`.
    #[inline]
    pub fn transaction(&self, tid: Tid) -> &[ItemId] {
        &self.transactions[tid.index()]
    }

    /// Iterate `(tid, items)` in tid order.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &[ItemId])> {
        self.transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (Tid(i as u32), t.as_slice()))
    }

    /// Iterate `(tid, items)` for tids in `range` (a partition block).
    pub fn iter_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = (Tid, &[ItemId])> {
        self.transactions[range.clone()]
            .iter()
            .zip(range)
            .map(|(t, i)| (Tid(i as u32), t.as_slice()))
    }

    /// Total number of item occurrences (sum of transaction lengths).
    pub fn total_items(&self) -> u64 {
        self.transactions.iter().map(|t| t.len() as u64).sum()
    }

    /// Bytes of the binary horizontal layout: per transaction a length
    /// word plus one word per item (4 bytes each). This is the quantity a
    /// full database scan costs in the I/O model — and matches the MB
    /// figures of Table 1.
    pub fn byte_size(&self) -> u64 {
        (self.num_transactions() as u64 + self.total_items()) * 4
    }

    /// Bytes of the block `range` of the layout (a partition's scan cost).
    pub fn byte_size_range(&self, range: std::ops::Range<usize>) -> u64 {
        let items: u64 = self.transactions[range.clone()]
            .iter()
            .map(|t| t.len() as u64)
            .sum();
        (range.len() as u64 + items) * 4
    }

    /// Average transaction length.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            self.total_items() as f64 / self.num_transactions() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[1, 3, 5], &[0, 1], &[5], &[2, 3, 4, 5]])
    }

    #[test]
    fn construction_sorts_and_infers_universe() {
        let db = HorizontalDb::of(&[&[5, 3, 1, 3]]);
        assert_eq!(db.transaction(Tid(0)), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(db.num_items(), 6);
    }

    #[test]
    fn iter_yields_dense_tids() {
        let db = sample();
        let tids: Vec<u32> = db.iter().map(|(t, _)| t.0).collect();
        assert_eq!(tids, vec![0, 1, 2, 3]);
        assert_eq!(db.num_transactions(), 4);
    }

    #[test]
    fn iter_range_is_a_block_view() {
        let db = sample();
        let block: Vec<(u32, usize)> = db.iter_range(1..3).map(|(t, i)| (t.0, i.len())).collect();
        assert_eq!(block, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn byte_size_formula() {
        let db = sample();
        // 4 transactions, 10 item occurrences → (4 + 10) * 4 = 56 bytes
        assert_eq!(db.total_items(), 10);
        assert_eq!(db.byte_size(), 56);
        assert_eq!(db.byte_size_range(0..4), 56);
        assert_eq!(
            db.byte_size_range(0..2) + db.byte_size_range(2..4),
            db.byte_size()
        );
    }

    #[test]
    fn with_num_items_extends_universe() {
        let db = sample().with_num_items(100);
        assert_eq!(db.num_items(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn with_num_items_rejects_shrink() {
        sample().with_num_items(2);
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert_eq!(db.num_transactions(), 0);
        assert_eq!(db.num_items(), 0);
        assert_eq!(db.byte_size(), 0);
        assert_eq!(db.avg_transaction_len(), 0.0);
    }

    #[test]
    fn avg_len() {
        assert!((sample().avg_transaction_len() - 2.5).abs() < 1e-12);
    }
}
