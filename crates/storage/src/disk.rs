//! File-backed partition store — §3's layout made literal: *"the
//! database is partitioned among all the processors in equal-sized
//! blocks, which reside on the local disk of each processor."*
//!
//! A [`PartitionStore`] owns a directory holding one horizontal block
//! file per processor (and, after the transformation phase, one vertical
//! file per processor). All operations report exact byte counts, the
//! same quantities the simulated disk model prices. The repro binaries
//! run in-memory by default; this store exists for users who want the
//! real on-disk pipeline and for the I/O integration tests.

use crate::binfmt;
use crate::horizontal::HorizontalDb;
use crate::partition::BlockPartition;
use crate::vertical::VerticalDb;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// A directory of per-processor partition files.
#[derive(Debug)]
pub struct PartitionStore {
    dir: PathBuf,
    num_processors: usize,
}

impl PartitionStore {
    /// Create (or reuse) a store directory for `num_processors`.
    ///
    /// # Errors
    /// I/O errors creating the directory.
    pub fn create(dir: impl AsRef<Path>, num_processors: usize) -> io::Result<PartitionStore> {
        assert!(num_processors > 0, "need at least one processor");
        fs::create_dir_all(dir.as_ref())?;
        Ok(PartitionStore {
            dir: dir.as_ref().to_path_buf(),
            num_processors,
        })
    }

    /// Number of processors the store is laid out for.
    pub fn num_processors(&self) -> usize {
        self.num_processors
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn horizontal_path(&self, proc: usize) -> PathBuf {
        self.dir.join(format!("block-{proc:04}.ech"))
    }

    fn vertical_path(&self, proc: usize) -> PathBuf {
        self.dir.join(format!("tidlists-{proc:04}.ecv"))
    }

    /// Split `db` into equal blocks and write one horizontal file per
    /// processor. Returns bytes written per processor.
    ///
    /// # Errors
    /// I/O errors writing the files.
    pub fn write_blocks(&self, db: &HorizontalDb) -> io::Result<Vec<u64>> {
        let partition = BlockPartition::equal_blocks(db.num_transactions(), self.num_processors);
        let mut written = Vec::with_capacity(self.num_processors);
        for (p, range) in partition.iter() {
            let block: Vec<Vec<mining_types::ItemId>> =
                db.iter_range(range).map(|(_, t)| t.to_vec()).collect();
            let block_db = HorizontalDb::from_transactions(block).with_num_items(db.num_items());
            let mut w = BufWriter::new(File::create(self.horizontal_path(p))?);
            written.push(binfmt::write_horizontal(&block_db, &mut w)?);
        }
        Ok(written)
    }

    /// Read processor `proc`'s horizontal block. Returns `(block, bytes)`.
    /// Tids in the returned block are block-local (`0..len`); combine
    /// with [`BlockPartition`] to re-base.
    ///
    /// # Errors
    /// I/O or format errors.
    pub fn read_block(&self, proc: usize) -> io::Result<(HorizontalDb, u64)> {
        let mut r = BufReader::new(File::open(self.horizontal_path(proc))?);
        binfmt::read_horizontal(&mut r)
    }

    /// Write processor `proc`'s vertical tid-lists (the transformation
    /// phase output: *"The tid-lists of itemsets in G are then written
    /// out to disk"*). Returns bytes written.
    ///
    /// # Errors
    /// I/O errors.
    pub fn write_vertical(&self, proc: usize, db: &VerticalDb) -> io::Result<u64> {
        let mut w = BufWriter::new(File::create(self.vertical_path(proc))?);
        binfmt::write_vertical(db, &mut w)
    }

    /// Read processor `proc`'s vertical tid-lists back.
    ///
    /// # Errors
    /// I/O or format errors.
    pub fn read_vertical(&self, proc: usize) -> io::Result<(VerticalDb, u64)> {
        let mut r = BufReader::new(File::open(self.vertical_path(proc))?);
        binfmt::read_vertical(&mut r)
    }

    /// Delete all partition files (the paper deletes the horizontal
    /// format once the vertical one exists, §7's disk-space note).
    ///
    /// # Errors
    /// I/O errors removing files.
    pub fn clear(&self) -> io::Result<()> {
        for p in 0..self.num_processors {
            for path in [self.horizontal_path(p), self.vertical_path(p)] {
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mining_types::ItemId;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eclat-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[0, 1], &[1, 2], &[0, 2], &[0, 1, 2], &[3]])
    }

    #[test]
    fn blocks_round_trip_and_cover_db() {
        let dir = tempdir("blocks");
        let store = PartitionStore::create(&dir, 2).unwrap();
        let db = sample();
        let written = store.write_blocks(&db).unwrap();
        assert_eq!(written.len(), 2);
        assert!(written.iter().all(|&b| b > 0));

        let mut all: Vec<Vec<ItemId>> = Vec::new();
        for (p, &expected) in written.iter().enumerate() {
            let (block, bytes) = store.read_block(p).unwrap();
            assert_eq!(bytes, expected);
            all.extend(block.iter().map(|(_, t)| t.to_vec()));
        }
        let rebuilt = HorizontalDb::from_transactions(all).with_num_items(db.num_items());
        assert_eq!(rebuilt, db);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vertical_files_round_trip() {
        let dir = tempdir("vert");
        let store = PartitionStore::create(&dir, 1).unwrap();
        let v = VerticalDb::from_horizontal(&sample());
        let written = store.write_vertical(0, &v).unwrap();
        let (back, read) = store.read_vertical(0).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, v);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_removes_everything_and_is_idempotent() {
        let dir = tempdir("clear");
        let store = PartitionStore::create(&dir, 2).unwrap();
        store.write_blocks(&sample()).unwrap();
        store.clear().unwrap();
        assert!(store.read_block(0).is_err());
        store.clear().unwrap(); // second clear: no error on missing files
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn larger_database_round_trips_through_many_blocks() {
        // (Mining over the store is exercised in the workspace-level
        // integration tests; here we verify the storage layer alone.)
        let dir = tempdir("big");
        let store = PartitionStore::create(&dir, 7).unwrap();
        let txns: Vec<Vec<ItemId>> = (0..500u32)
            .map(|i| {
                (0..(i % 9 + 1))
                    .map(|j| ItemId((i * 7 + j * 13) % 50))
                    .collect::<Vec<_>>()
            })
            .collect();
        let db = HorizontalDb::from_transactions(txns).with_num_items(50);
        let written = store.write_blocks(&db).unwrap();
        assert_eq!(written.len(), 7);
        let mut all = Vec::new();
        for (p, &expected) in written.iter().enumerate() {
            let (block, bytes) = store.read_block(p).unwrap();
            assert_eq!(bytes, expected);
            all.extend(block.iter().map(|(_, t)| t.to_vec()));
        }
        let roundtrip = HorizontalDb::from_transactions(all).with_num_items(50);
        assert_eq!(roundtrip, db);
        fs::remove_dir_all(&dir).unwrap();
    }
}
