//! Regenerates **Figure 7** — Eclat speedup on different databases over
//! the processor configurations, relative to the sequential (T=1) run.
//!
//! Pass `--hybrid` to also run the §8.1/§9 hybrid parallelization (A6)
//! and show its speedups side by side.
//!
//! ```text
//! cargo run -p repro-bench --bin fig7 --release [-- --scale=small --hybrid]
//! ```

use dbstore::HorizontalDb;
use eclat::EclatConfig;
use memchannel::{ClusterConfig, CostModel};
use mining_types::MinSupport;
use questgen::QuestGenerator;
use repro_bench::{row, table2_configs, Args};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let support = args.support_percent();
    let minsup = MinSupport::from_percent(support);
    let cost = CostModel::dec_alpha_1997();
    let cfg = EclatConfig::default();
    let with_hybrid = args.has("hybrid");
    let configs = table2_configs(args.has("large-configs"));

    println!("Figure 7: ECLAT parallel speedup (scale {scale:?}, support {support}%)");
    println!("speedup = simulated T(seq) / T(config)\n");

    for params in scale.table2_databases() {
        let name = params.name();
        eprintln!("[fig7] generating {name} ...");
        let txns = QuestGenerator::new(params).generate_all();
        let db = HorizontalDb::from_transactions(txns);

        let seq =
            eclat::cluster::mine_cluster(&db, minsup, &ClusterConfig::sequential(), &cost, &cfg);
        let t_seq = seq.total_secs();
        println!("{name}  (sequential: {t_seq:.1}s simulated)");
        let mut widths = vec![14usize, 4, 10, 9];
        let mut header = vec!["config", "T", "time(s)", "speedup"];
        if with_hybrid {
            widths.extend([10, 9]);
            header.extend(["hyb(s)", "hyb spd"]);
        }
        println!(
            "{}",
            row(
                &header.into_iter().map(String::from).collect::<Vec<_>>(),
                &widths
            )
        );
        for c in &configs {
            let rep = eclat::cluster::mine_cluster(&db, minsup, c, &cost, &cfg);
            assert_eq!(rep.frequent, seq.frequent, "{name} {}", c.label());
            let mut cols = vec![
                c.label(),
                format!("{}", c.total()),
                format!("{:.1}", rep.total_secs()),
                format!("{:.2}", t_seq / rep.total_secs()),
            ];
            if with_hybrid {
                let hy = eclat::hybrid::mine_hybrid(&db, minsup, c, &cost, &cfg);
                assert_eq!(hy.frequent, seq.frequent);
                cols.push(format!("{:.1}", hy.total_secs()));
                cols.push(format!("{:.2}", t_seq / hy.total_secs()));
            }
            println!("{}", row(&cols, &widths));
        }
        println!();
    }
    println!("(paper shape: near-linear speedup with H at P=1; for equal T, fewer");
    println!(" processors per host wins — H=8,P=1 beats H=2,P=4 — due to local");
    println!(" disk contention; the hybrid variant recovers most of that loss)");
}
