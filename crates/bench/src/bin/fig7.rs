//! Regenerates **Figure 7** — Eclat speedup on different databases over
//! the processor configurations, relative to the sequential (T=1) run.
//!
//! Pass `--hybrid` to also run the §8.1/§9 hybrid parallelization (A6)
//! and show its speedups side by side.
//!
//! Pass `--json=PATH` to also write a machine-readable document with one
//! row per (database, config), embedding the structured
//! [`mining_types::MiningStats`] report of each simulated run.
//!
//! ```text
//! cargo run -p repro-bench --bin fig7 --release [-- --scale=small --hybrid \
//!     --json=results/fig7.json]
//! ```

use dbstore::HorizontalDb;
use eclat::EclatConfig;
use memchannel::{ClusterConfig, CostModel};
use mining_types::json::{Arr, Obj};
use mining_types::MinSupport;
use questgen::QuestGenerator;
use repro_bench::{row, table2_configs, Args};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let support = args.support_percent();
    let minsup = MinSupport::from_percent(support);
    let cost = CostModel::dec_alpha_1997();
    let cfg = EclatConfig::default();
    let with_hybrid = args.has("hybrid");
    let configs = table2_configs(args.has("large-configs"));
    let json_path = args.json_out();
    let mut json_rows = Arr::new();

    println!("Figure 7: ECLAT parallel speedup (scale {scale:?}, support {support}%)");
    println!("speedup = simulated T(seq) / T(config)\n");

    for params in scale.table2_databases() {
        let name = params.name();
        eprintln!("[fig7] generating {name} ...");
        let txns = QuestGenerator::new(params).generate_all();
        let db = HorizontalDb::from_transactions(txns);

        let seq =
            eclat::cluster::mine_cluster(&db, minsup, &ClusterConfig::sequential(), &cost, &cfg);
        let t_seq = seq.total_secs();
        println!("{name}  (sequential: {t_seq:.1}s simulated)");
        let mut widths = vec![14usize, 4, 10, 9];
        let mut header = vec!["config", "T", "time(s)", "speedup"];
        if with_hybrid {
            widths.extend([10, 9]);
            header.extend(["hyb(s)", "hyb spd"]);
        }
        println!(
            "{}",
            row(
                &header.into_iter().map(String::from).collect::<Vec<_>>(),
                &widths
            )
        );
        for c in &configs {
            let rep = eclat::cluster::mine_cluster(&db, minsup, c, &cost, &cfg);
            assert_eq!(rep.frequent, seq.frequent, "{name} {}", c.label());
            let mut cols = vec![
                c.label(),
                format!("{}", c.total()),
                format!("{:.1}", rep.total_secs()),
                format!("{:.2}", t_seq / rep.total_secs()),
            ];
            let mut jrow = Obj::new()
                .str("database", &name)
                .str("config", &c.label())
                .u64("total_procs", c.total() as u64)
                .f64("secs", rep.total_secs())
                .f64("speedup", t_seq / rep.total_secs());
            if with_hybrid {
                let hy = eclat::hybrid::mine_hybrid(&db, minsup, c, &cost, &cfg);
                assert_eq!(hy.frequent, seq.frequent);
                cols.push(format!("{:.1}", hy.total_secs()));
                cols.push(format!("{:.2}", t_seq / hy.total_secs()));
                jrow = jrow
                    .f64("hybrid_secs", hy.total_secs())
                    .f64("hybrid_speedup", t_seq / hy.total_secs())
                    .raw("hybrid_stats", &hy.stats.to_json(false));
            }
            if json_path.is_some() {
                json_rows.raw(&jrow.raw("stats", &rep.stats.to_json(false)).finish());
            }
            println!("{}", row(&cols, &widths));
        }
        println!();
    }
    println!("(paper shape: near-linear speedup with H at P=1; for equal T, fewer");
    println!(" processors per host wins — H=8,P=1 beats H=2,P=4 — due to local");
    println!(" disk contention; the hybrid variant recovers most of that loss)");

    if let Some(path) = json_path {
        let doc = Obj::new()
            .str("bench", "fig7")
            .str("scale", &format!("{scale:?}"))
            .f64("support_percent", support)
            .raw("rows", &json_rows.finish())
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[fig7] wrote {path}");
    }
}
