//! Diff two `results/*.json` stats artifacts.
//!
//! Both documents are flattened to `dotted.path = value` leaves; arrays
//! of objects are keyed by their identifying field (`name`, `database`,
//! `quantile`, …) when one is present, so per-phase / per-level rows
//! line up across runs even when row order or row count changed. Numeric
//! leaves get absolute and relative deltas; string leaves are reported
//! when they changed; paths present on only one side are listed as
//! added/removed.
//!
//! ```text
//! cargo run -p repro-bench --bin stats_diff --release -- \
//!     results/table2_before.json results/table2_after.json \
//!     [--all] [--tolerance=0.01]
//! ```
//!
//! `--tolerance` suppresses numeric changes whose relative delta is
//! below the threshold (default `0`: report every change); `--all` also
//! prints unchanged leaves. Exits `1` when any difference was reported,
//! `0` when the artifacts are equivalent — usable as a regression gate.
//!
//! `scripts/stats_diff` wraps this binary.

use mining_types::json::{parse, Value};
use repro_bench::Args;
use std::collections::BTreeMap;

/// Fields that identify a row of an array-of-objects; checked in order.
const KEY_FIELDS: &[&str] = &[
    "name", "database", "phase", "level", "size", "len", "quantile", "proc", "bench", "policy",
    "maxlen",
];

/// A flattened leaf.
#[derive(Clone, Debug, PartialEq)]
enum Leaf {
    Num(f64),
    Text(String),
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Num(n) => write!(f, "{n}"),
            Leaf::Text(s) => write!(f, "{s:?}"),
        }
    }
}

fn leaf_of(v: &Value) -> Option<Leaf> {
    match v {
        Value::Num(n) => Some(Leaf::Num(*n)),
        Value::Str(s) => Some(Leaf::Text(s.clone())),
        Value::Bool(b) => Some(Leaf::Text(b.to_string())),
        Value::Null => Some(Leaf::Text("null".to_string())),
        Value::Arr(_) | Value::Obj(_) => None,
    }
}

/// The identifying key of an array element, if it is an object carrying
/// one of the [`KEY_FIELDS`].
fn row_key(v: &Value) -> Option<String> {
    for field in KEY_FIELDS {
        match v.get(field) {
            Some(Value::Str(s)) => return Some(s.clone()),
            Some(Value::Num(n)) => return Some(format!("{n}")),
            _ => {}
        }
    }
    None
}

fn join(prefix: &str, segment: &str) -> String {
    if prefix.is_empty() {
        segment.to_string()
    } else {
        format!("{prefix}.{segment}")
    }
}

/// Flatten a document into `path → leaf`, recursively.
fn flatten(v: &Value, prefix: &str, out: &mut BTreeMap<String, Leaf>) {
    if let Some(leaf) = leaf_of(v) {
        out.insert(prefix.to_string(), leaf);
        return;
    }
    match v {
        Value::Obj(fields) => {
            for (k, val) in fields {
                flatten(val, &join(prefix, k), out);
            }
        }
        Value::Arr(items) => {
            // Key rows by their identifying field when every row has one
            // and the keys are unique; fall back to positional indices.
            let keys: Vec<Option<String>> = items.iter().map(row_key).collect();
            let mut unique: Vec<&String> = keys.iter().flatten().collect();
            unique.sort();
            unique.dedup();
            let keyed = !items.is_empty()
                && keys.iter().all(Option::is_some)
                && unique.len() == items.len();
            for (i, item) in items.iter().enumerate() {
                let segment = if keyed {
                    format!("[{}]", keys[i].as_ref().unwrap())
                } else {
                    format!("[{i}]")
                };
                flatten(item, &join(prefix, &segment), out);
            }
        }
        _ => unreachable!("leaf_of covers scalars"),
    }
}

fn load(path: &str) -> BTreeMap<String, Leaf> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let mut out = BTreeMap::new();
    flatten(&doc, "", &mut out);
    out
}

fn relative_delta(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (b - a).abs() / a.abs()
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&String> = argv.iter().filter(|a| !a.starts_with("--")).collect();
    let args = Args::from_tokens(argv.iter().filter(|a| a.starts_with("--")).cloned());
    if paths.len() != 2 {
        eprintln!("usage: stats_diff OLD.json NEW.json [--all] [--tolerance=FRAC]");
        std::process::exit(2);
    }
    let tolerance: f64 = args
        .get("tolerance")
        .map(|s| s.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.0);
    let show_all = args.has("all");

    let old = load(paths[0]);
    let new = load(paths[1]);
    println!("stats_diff: {} -> {}", paths[0], paths[1]);

    let mut changed = 0usize;
    let mut unchanged = 0usize;
    for (path, a) in &old {
        match new.get(path) {
            None => {
                println!("  - {path} (removed; was {a})");
                changed += 1;
            }
            Some(b) if a == b => {
                if show_all {
                    println!("    {path}: {a}");
                }
                unchanged += 1;
            }
            Some(b) => match (a, b) {
                (Leaf::Num(x), Leaf::Num(y)) => {
                    let rel = relative_delta(*x, *y);
                    if rel < tolerance {
                        if show_all {
                            println!("    {path}: {a} ~ {b} (within tolerance)");
                        }
                        unchanged += 1;
                    } else {
                        let pct = if rel.is_finite() {
                            format!("{:+.2}%", (y - x) / x.abs() * 100.0)
                        } else {
                            "new!=0".to_string()
                        };
                        println!("  ~ {path}: {x} -> {y} ({:+} , {pct})", y - x);
                        changed += 1;
                    }
                }
                _ => {
                    println!("  ~ {path}: {a} -> {b}");
                    changed += 1;
                }
            },
        }
    }
    for (path, b) in &new {
        if !old.contains_key(path) {
            println!("  + {path} = {b}");
            changed += 1;
        }
    }

    println!(
        "{} leaves compared: {changed} differ, {unchanged} match{}",
        old.len() + new.keys().filter(|k| !old.contains_key(*k)).count(),
        if tolerance > 0.0 {
            format!(" (tolerance {tolerance})")
        } else {
            String::new()
        }
    );
    std::process::exit(if changed > 0 { 1 } else { 0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(doc: &str) -> BTreeMap<String, Leaf> {
        let mut out = BTreeMap::new();
        flatten(&parse(doc).unwrap(), "", &mut out);
        out
    }

    #[test]
    fn scalars_and_nesting() {
        let f = flat(r#"{"a":1,"b":{"c":"x","d":null},"e":true}"#);
        assert_eq!(f["a"], Leaf::Num(1.0));
        assert_eq!(f["b.c"], Leaf::Text("x".to_string()));
        assert_eq!(f["b.d"], Leaf::Text("null".to_string()));
        assert_eq!(f["e"], Leaf::Text("true".to_string()));
    }

    #[test]
    fn keyed_arrays_line_up_regardless_of_order() {
        let a = flat(r#"{"phases":[{"name":"init","secs":1},{"name":"transform","secs":2}]}"#);
        let b = flat(r#"{"phases":[{"name":"transform","secs":3},{"name":"init","secs":1}]}"#);
        assert_eq!(a["phases.[init].secs"], b["phases.[init].secs"]);
        assert_eq!(a["phases.[transform].secs"], Leaf::Num(2.0));
        assert_eq!(b["phases.[transform].secs"], Leaf::Num(3.0));
    }

    #[test]
    fn unkeyed_and_duplicate_key_arrays_fall_back_to_indices() {
        let f = flat(r#"{"xs":[10,20],"rows":[{"name":"a"},{"name":"a"}]}"#);
        assert_eq!(f["xs.[0]"], Leaf::Num(10.0));
        assert_eq!(f["xs.[1]"], Leaf::Num(20.0));
        assert!(f.contains_key("rows.[0].name"));
        assert!(f.contains_key("rows.[1].name"));
    }

    #[test]
    fn seq_artifact_rows_key_by_len_and_policy() {
        let a = flat(r#"{"by_len":[{"len":1,"patterns":5},{"len":2,"patterns":3}]}"#);
        let b = flat(r#"{"by_len":[{"len":2,"patterns":4},{"len":1,"patterns":5}]}"#);
        assert_eq!(a["by_len.[1].patterns"], b["by_len.[1].patterns"]);
        assert_eq!(a["by_len.[2].patterns"], Leaf::Num(3.0));
        assert_eq!(b["by_len.[2].patterns"], Leaf::Num(4.0));
        let p = flat(r#"{"policies":[{"policy":"sequential","secs":1.5}]}"#);
        assert!(p.contains_key("policies.[sequential].secs"));
    }

    #[test]
    fn quantile_rows_key_by_number() {
        let f = flat(r#"{"latency_ms":[{"quantile":0.5,"ms":1},{"quantile":0.99,"ms":2}]}"#);
        assert_eq!(f["latency_ms.[0.5].ms"], Leaf::Num(1.0));
        assert_eq!(f["latency_ms.[0.99].ms"], Leaf::Num(2.0));
    }

    #[test]
    fn relative_deltas() {
        assert_eq!(relative_delta(2.0, 2.0), 0.0);
        assert_eq!(relative_delta(2.0, 3.0), 0.5);
        assert!(relative_delta(0.0, 1.0).is_infinite());
    }
}
