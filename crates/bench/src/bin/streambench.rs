//! Incremental-vs-full benchmark for the streaming mining engine:
//! replays a Quest database batch-by-batch through
//! [`eclat_stream::StreamEngine`] and, after every batch, re-mines the
//! same prefix from scratch — timing both, asserting they agree
//! exactly, and reporting the dirty-class fraction that explains the
//! incremental win.
//!
//! ```text
//! cargo run -p repro-bench --bin streambench --release [-- \
//!     --transactions=50000 --batches=10 --support=0.5 \
//!     --confidence=0.3 --smoke --json=results/streambench.json]
//! ```
//!
//! The replay ends with a deliberately tiny final batch (`--delta`,
//! default 0.1 % of the stream) on top of the full prefix — the
//! steady-state shape incremental mining exists for, where only the
//! classes the delta actually touched pay for re-mining. Every batch is
//! equality-asserted against the from-scratch mine (frequent sets and
//! rules), so the bench doubles as an end-to-end correctness check; a
//! divergence aborts the run rather than reporting a meaningless time.

use dbstore::HorizontalDb;
use eclat::pipeline::Serial;
use eclat::EclatConfig;
use eclat_stream::{MinedState, StreamEngine, StreamStats};
use mining_types::json::{Arr, Obj};
use mining_types::MinSupport;
use questgen::{QuestGenerator, QuestParams};
use repro_bench::{row, Args};
use std::time::Instant;

struct BenchConfig {
    transactions: usize,
    batches: usize,
    delta: usize,
    support_percent: f64,
    confidence: f64,
}

/// One batch's paired measurement: the engine's incremental ingest vs a
/// from-scratch mine of the same prefix.
struct Paired {
    batch: u64,
    transactions: u64,
    total_transactions: u64,
    classes_total: u64,
    classes_dirty: u64,
    dirty_bound: u64,
    dirty_fraction: f64,
    itemsets: u64,
    rules: u64,
    incremental_secs: f64,
    full_secs: f64,
}

impl Paired {
    fn speedup(&self) -> f64 {
        if self.incremental_secs > 0.0 {
            self.full_secs / self.incremental_secs
        } else {
            0.0
        }
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let cfg = BenchConfig {
        transactions: args
            .get("transactions")
            .map(|s| s.parse().expect("--transactions"))
            .unwrap_or(if smoke { 3_000 } else { 50_000 }),
        batches: args
            .get("batches")
            .map(|s| s.parse().expect("--batches"))
            .unwrap_or(if smoke { 5 } else { 10 }),
        delta: args
            .get("delta")
            .map(|s| s.parse().expect("--delta"))
            .unwrap_or(0),
        support_percent: args
            .get("support")
            .map(|s| s.parse().expect("--support"))
            .unwrap_or(if smoke { 1.0 } else { 0.5 }),
        confidence: args
            .get("confidence")
            .map(|s| s.parse().expect("--confidence"))
            .unwrap_or(0.3),
    };
    assert!(cfg.batches > 0, "--batches must be > 0");
    let delta = if cfg.delta > 0 {
        cfg.delta
    } else {
        (cfg.transactions / 1000).max(1)
    };

    let params = QuestParams::t10_i6(cfg.transactions).with_seed(0x57BE);
    eprintln!(
        "[streambench] generating {} (last {delta} txns held as the final delta) ...",
        params.name()
    );
    let txns = QuestGenerator::new(params).generate_all();
    let (main_stream, tail) = txns.split_at(cfg.transactions - delta);
    let batch_size = main_stream.len().div_ceil(cfg.batches);

    let minsup = MinSupport::from_percent(cfg.support_percent);
    let mining_cfg = EclatConfig::with_singletons();
    let num_items = txns
        .iter()
        .flat_map(|t| t.iter().map(|i| i.0 + 1))
        .max()
        .unwrap_or(0);
    let mut engine = StreamEngine::new(num_items, minsup, cfg.confidence, mining_cfg.clone());
    let mut run = StreamStats {
        representation: format!("{:?}", mining_cfg.representation),
        batch_size: batch_size as u64,
        ..StreamStats::default()
    };

    // The replay: `batches` even slices of the main stream, then the
    // small tail delta that models steady-state ingest.
    let mut slices: Vec<&[_]> = main_stream.chunks(batch_size).collect();
    slices.push(tail);

    let widths = [5usize, 6, 8, 9, 9, 7, 9, 12, 12, 8];
    println!(
        "{}",
        row(
            &[
                "batch", "+txns", "total", "classes", "dirty", "bound", "dirty%", "incr (s)",
                "full (s)", "speedup"
            ]
            .map(String::from),
            &widths
        )
    );

    let mut paired = Vec::with_capacity(slices.len());
    let mut prefix: Vec<Vec<mining_types::ItemId>> = Vec::with_capacity(txns.len());
    for batch in slices {
        let t0 = Instant::now();
        let stats = engine.ingest_batch(batch, &Serial);
        let incremental_secs = t0.elapsed().as_secs_f64();
        assert!(
            stats.classes_dirty <= stats.dirty_bound,
            "pair-granular dirty set exceeded the item-granular bound"
        );

        prefix.extend(batch.iter().cloned());
        let db = HorizontalDb::from_transactions(prefix.clone());
        let t1 = Instant::now();
        let full = MinedState::full_mine(&db, minsup, cfg.confidence, &mining_cfg);
        let full_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            engine.state().frequent,
            full.frequent,
            "incremental frequent set diverged from full re-mine at batch {}",
            stats.batch
        );
        assert_eq!(
            engine.state().rules,
            full.rules,
            "incremental rules diverged from full re-mine at batch {}",
            stats.batch
        );

        let p = Paired {
            batch: stats.batch,
            transactions: stats.transactions,
            total_transactions: stats.total_transactions,
            classes_total: stats.classes_total,
            classes_dirty: stats.classes_dirty,
            dirty_bound: stats.dirty_bound,
            dirty_fraction: stats.dirty_fraction(),
            itemsets: stats.itemsets,
            rules: stats.rules,
            incremental_secs,
            full_secs,
        };
        println!(
            "{}",
            row(
                &[
                    p.batch.to_string(),
                    p.transactions.to_string(),
                    p.total_transactions.to_string(),
                    p.classes_total.to_string(),
                    p.classes_dirty.to_string(),
                    p.dirty_bound.to_string(),
                    format!("{:.1}", p.dirty_fraction * 100.0),
                    format!("{:.4}", p.incremental_secs),
                    format!("{:.4}", p.full_secs),
                    format!("{:.2}x", p.speedup()),
                ],
                &widths
            )
        );
        run.push(stats);
        paired.push(p);
    }

    let last = paired.last().expect("at least one batch");
    println!(
        "streambench: {} batches verified against full re-mine ({} itemsets, {} rules at gen {})",
        paired.len(),
        last.itemsets,
        last.rules,
        engine.generation()
    );
    println!(
        "  final delta: +{} txns touched {}/{} classes ({:.1}%), incremental {:.4}s vs full {:.4}s ({:.2}x)",
        last.transactions,
        last.classes_dirty,
        last.classes_total,
        last.dirty_fraction * 100.0,
        last.incremental_secs,
        last.full_secs,
        last.speedup()
    );

    if let Some(path) = args.json_out() {
        let mut batches = Arr::new();
        for p in &paired {
            batches.raw(
                &Obj::new()
                    .u64("batch", p.batch)
                    .u64("transactions", p.transactions)
                    .u64("total_transactions", p.total_transactions)
                    .u64("classes_total", p.classes_total)
                    .u64("classes_dirty", p.classes_dirty)
                    .u64("dirty_bound", p.dirty_bound)
                    .f64("dirty_fraction", p.dirty_fraction)
                    .u64("itemsets", p.itemsets)
                    .u64("rules", p.rules)
                    .f64("incremental_secs", p.incremental_secs)
                    .f64("full_secs", p.full_secs)
                    .f64("speedup", p.speedup())
                    .finish(),
            );
        }
        let doc = Obj::new()
            .str("bench", "streambench")
            .raw("smoke", if smoke { "true" } else { "false" })
            .u64("transactions", cfg.transactions as u64)
            .u64("batch_size", batch_size as u64)
            .u64("delta", delta as u64)
            .f64("support_percent", cfg.support_percent)
            .f64("confidence", cfg.confidence)
            .f64("final_dirty_fraction", last.dirty_fraction)
            .f64("final_speedup", last.speedup())
            .raw("batches", &batches.finish())
            .raw("stream_stats", &run.to_json())
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[streambench] wrote {path}");
    }
}
