//! Closed-loop multi-threaded load generator for the `assoc-serve` query
//! server: measures sustained QPS and latency percentiles over the wire
//! protocol on loopback.
//!
//! By default the bench is self-hosting — it generates a Quest database,
//! mines it, starts an in-process server on an ephemeral port, and then
//! hammers it over real TCP. Point `--addr=HOST:PORT` at an external
//! `eclat serve` instance to load-test that instead (the probe set is
//! then built from the server's own top-k answers).
//!
//! ```text
//! cargo run -p repro-bench --bin servload --release [-- --threads=8 \
//!     --requests=2000 --transactions=20000 --support=0.25 \
//!     --confidence=0.3 --smoke --json=results/servload.json]
//! ```
//!
//! `--requests` is per thread; each thread runs its own connection and a
//! deterministic query mix (support lookups, subset/superset walks, rule
//! fetches, top-k), so runs are reproducible. `--smoke` shrinks
//! everything to a seconds-long one-shot for CI.
//!
//! Alongside the client-observed percentiles the report prints the
//! server's own per-query histograms (the `queries` section of the
//! stats document) and flags any quantile where the two views disagree
//! by more than 20 % — a queueing/network gap the client-side numbers
//! alone would hide. `--trace=PATH` arms the [`eclat_obs`] tracer for
//! the self-hosted setup (generation + mining) and leaves the span
//! timeline as a JSONL artifact next to the `--json` document.

use assoc_serve::{Client, Dataset, ServerConfig, Store, StoreConfig};
use dbstore::HorizontalDb;
use mining_types::json::{parse, Arr, Obj, Value};
use mining_types::{Itemset, MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};
use repro_bench::Args;
use std::net::SocketAddr;
use std::time::Instant;

struct LoadConfig {
    threads: usize,
    requests_per_thread: usize,
    transactions: usize,
    support_percent: f64,
    confidence: f64,
    limit: u32,
}

/// The deterministic per-request query mix, shared by every thread.
struct Probes {
    present: Vec<Itemset>,
    antecedents: Vec<Itemset>,
    missing: Itemset,
}

impl Probes {
    /// Build probes from whatever the server actually holds, via its own
    /// top-k answers (works for self-hosted and external targets alike).
    fn discover(client: &mut Client, limit: u32) -> std::io::Result<Probes> {
        let mut present: Vec<Itemset> = client
            .top_k(0, 256)?
            .into_iter()
            .map(|c| c.itemset)
            .collect();
        if present.is_empty() {
            present.push(Itemset::of(&[0]));
        }
        // Any frequent itemset is a plausible antecedent (the server
        // answers an empty rule list for those with no consequents).
        let antecedents: Vec<Itemset> = present
            .iter()
            .take(limit.max(1) as usize)
            .cloned()
            .collect();
        let max_item = present
            .iter()
            .flat_map(|is| is.items())
            .map(|i| i.index() as u32)
            .max()
            .unwrap_or(0);
        Ok(Probes {
            present,
            antecedents,
            missing: Itemset::of(&[max_item + 1, max_item + 2]),
        })
    }
}

/// One thread's closed loop: issue `n` queries serially, recording each
/// round-trip latency in nanoseconds.
fn client_loop(
    addr: SocketAddr,
    probes: &Probes,
    thread: usize,
    n: usize,
    limit: u32,
) -> std::io::Result<Vec<u64>> {
    let mut client = Client::connect(addr)?;
    let mut latencies = Vec::with_capacity(n);
    let ants = probes.antecedents.len().max(1);
    for i in 0..n {
        let pick = thread * 7919 + i; // decorrelate threads, stay deterministic
        let probe = probes.present[pick % probes.present.len()].clone();
        let t0 = Instant::now();
        match pick % 10 {
            0..=3 => {
                client.support(probe)?;
            }
            4 => {
                client.support(probes.missing.clone())?;
            }
            5 | 6 => {
                client.subsets(probe, limit)?;
            }
            7 => {
                client.supersets(probe, limit)?;
            }
            8 => {
                let a = probes
                    .antecedents
                    .get(pick % ants)
                    .cloned()
                    .unwrap_or(probe);
                client.rules_for(a, limit)?;
            }
            _ => {
                client.top_k((pick % 3 + 1) as u32, limit)?;
            }
        }
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(latencies)
}

fn percentile_ms(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[at] as f64 / 1e6
}

/// The server's own `all` latency digest from a stats JSON document:
/// `(count, p50_ms, p90_ms, p99_ms)`. `None` when the server predates
/// the `queries` section.
fn server_percentiles(stats_json: &str) -> Option<(u64, f64, f64, f64)> {
    let v = parse(stats_json).ok()?;
    let Value::Arr(rows) = v.get("queries")? else {
        return None;
    };
    let all = rows
        .iter()
        .find(|r| r.get("query").and_then(Value::as_str) == Some("all"))?;
    Some((
        all.get("count")?.as_num()? as u64,
        all.get("p50_ms")?.as_num()?,
        all.get("p90_ms")?.as_num()?,
        all.get("p99_ms")?.as_num()?,
    ))
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    if args.get("trace").is_some() {
        eclat_obs::trace::set_identity(0x5E4E, 0);
        eclat_obs::trace::set_enabled(true);
    }
    let cfg = LoadConfig {
        threads: args
            .get("threads")
            .map(|s| s.parse().expect("--threads"))
            .unwrap_or(if smoke { 2 } else { 8 }),
        requests_per_thread: args
            .get("requests")
            .map(|s| s.parse().expect("--requests"))
            .unwrap_or(if smoke { 200 } else { 2000 }),
        transactions: args
            .get("transactions")
            .map(|s| s.parse().expect("--transactions"))
            .unwrap_or(if smoke { 2000 } else { 20_000 }),
        support_percent: args
            .get("support")
            .map(|s| s.parse().expect("--support"))
            .unwrap_or(0.25),
        confidence: args
            .get("confidence")
            .map(|s| s.parse().expect("--confidence"))
            .unwrap_or(0.3),
        limit: args
            .get("limit")
            .map(|s| s.parse().expect("--limit"))
            .unwrap_or(20),
    };

    // Self-host unless an external target was given.
    let (addr, hosted) = match args.get("addr") {
        Some(a) => (a.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            let params = QuestParams::t10_i6(cfg.transactions).with_seed(0x5E4E);
            eprintln!("[servload] generating {} ...", params.name());
            let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
            eprintln!("[servload] mining at {}% ...", cfg.support_percent);
            let frequent = eclat::sequential::mine_with(
                &db,
                MinSupport::from_percent(cfg.support_percent),
                &eclat::EclatConfig::with_singletons(),
                &mut OpMeter::new(),
            );
            let rules = assoc_rules::generate(&frequent, cfg.confidence);
            let dataset = Dataset {
                frequent,
                rules,
                num_transactions: db.num_transactions() as u32,
            };
            let store = std::sync::Arc::new(Store::with_dataset(&dataset, &StoreConfig::default()));
            let server_cfg = ServerConfig {
                workers: cfg.threads,
                ..ServerConfig::default()
            };
            let handle =
                assoc_serve::start(std::sync::Arc::clone(&store), &server_cfg).expect("bind");
            (handle.local_addr(), Some((store, handle)))
        }
    };

    let mut discover = Client::connect(addr).expect("connect for discovery");
    let probes = Probes::discover(&mut discover, cfg.limit).expect("probe discovery");
    let stats = discover.stats_json().expect("server stats");
    drop(discover);
    eprintln!(
        "[servload] {addr}: {} probe itemsets, {} antecedents; {} threads x {} requests",
        probes.present.len(),
        probes.antecedents.len(),
        cfg.threads,
        cfg.requests_per_thread
    );

    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let probes = &probes;
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                scope.spawn(move || {
                    client_loop(addr, probes, t, cfg.requests_per_thread, cfg.limit)
                        .expect("client loop")
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let total = latencies.len();
    let qps = total as f64 / wall;
    let p50 = percentile_ms(&latencies, 0.50);
    let p90 = percentile_ms(&latencies, 0.90);
    let p99 = percentile_ms(&latencies, 0.99);
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64 / 1e6;

    let final_stats = Client::connect(addr)
        .and_then(|mut c| c.stats_json())
        .unwrap_or(stats);

    println!(
        "servload: {total} requests over {} threads in {wall:.2}s",
        cfg.threads
    );
    println!("  throughput : {qps:>10.0} req/s");
    println!("  latency    : p50 {p50:.3} ms  p90 {p90:.3} ms  p99 {p99:.3} ms  mean {mean:.3} ms");

    // The server's own histograms next to the client's view; a gap
    // beyond 20 % is queueing/network the service time doesn't see (the
    // histograms themselves quantize at <= 12.5 %).
    let server_side = server_percentiles(&final_stats);
    match server_side {
        Some((count, sp50, sp90, sp99)) => {
            println!(
                "  server-side: p50 {sp50:.3} ms  p90 {sp90:.3} ms  p99 {sp99:.3} ms  ({count} requests measured)"
            );
            for (label, client, server) in
                [("p50", p50, sp50), ("p90", p90, sp90), ("p99", p99, sp99)]
            {
                let rel = (client - server).abs() / client.max(server).max(1e-9);
                if rel > 0.20 {
                    println!(
                        "  !! {label} disagrees by {:.0}%: client {client:.3} ms vs server {server:.3} ms",
                        rel * 100.0
                    );
                }
            }
        }
        None => {
            println!("  server-side: no per-query histograms (server predates the metrics surface)")
        }
    }

    if let Some(path) = args.json_out() {
        let doc = Obj::new()
            .str("bench", "servload")
            .raw("smoke", if smoke { "true" } else { "false" })
            .u64("threads", cfg.threads as u64)
            .u64("requests_per_thread", cfg.requests_per_thread as u64)
            .u64("total_requests", total as u64)
            .u64("transactions", cfg.transactions as u64)
            .f64("support_percent", cfg.support_percent)
            .f64("confidence", cfg.confidence)
            .f64("wall_secs", wall)
            .f64("qps", qps)
            .f64("p50_ms", p50)
            .f64("p90_ms", p90)
            .f64("p99_ms", p99)
            .f64("mean_ms", mean)
            .raw(
                "server_side",
                &match server_side {
                    Some((count, sp50, sp90, sp99)) => Obj::new()
                        .u64("count", count)
                        .f64("p50_ms", sp50)
                        .f64("p90_ms", sp90)
                        .f64("p99_ms", sp99)
                        .finish(),
                    None => "null".to_string(),
                },
            )
            .raw("server_stats", &final_stats)
            .raw("latency_ms", &{
                // A small fixed quantile grid so artifacts diff cleanly.
                let mut arr = Arr::new();
                for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                    arr.raw(
                        &Obj::new()
                            .f64("quantile", q)
                            .f64("ms", percentile_ms(&latencies, q))
                            .finish(),
                    );
                }
                arr.finish()
            })
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[servload] wrote {path}");
    }

    if let Some((store, handle)) = hosted {
        let counters = handle.shutdown();
        let cs = store.cache_stats();
        println!(
            "  server     : {} connections, {} requests, cache hit rate {:.0}%",
            counters.connections,
            counters.requests,
            cs.hit_rate() * 100.0
        );
    }

    if let Some(path) = args.get("trace") {
        std::fs::write(path, eclat_obs::trace::render_jsonl()).expect("write --trace output");
        eprintln!("[servload] wrote trace {path}");
    }
}
