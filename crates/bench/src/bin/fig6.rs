//! Regenerates **Figure 6** — number of frequent k-itemsets per size for
//! each database at the minimum support.
//!
//! ```text
//! cargo run -p repro-bench --bin fig6 --release [-- --scale=small --support=0.25]
//! ```

use dbstore::HorizontalDb;
use mining_types::MinSupport;
use questgen::QuestGenerator;
use repro_bench::Args;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let support = args.support_percent();
    let minsup = MinSupport::from_percent(support);
    println!("Figure 6: Number of frequent k-itemsets (support = {support}%, scale {scale:?})\n");

    for params in scale.table1_databases() {
        let name = params.name();
        eprintln!("[fig6] generating {name} ...");
        let txns = QuestGenerator::new(params).generate_all();
        let db = HorizontalDb::from_transactions(txns);
        eprintln!("[fig6] mining {name} ...");
        let t0 = std::time::Instant::now();
        let fs = eclat::sequential::mine(&db, minsup);
        let counts = fs.counts_by_size();
        println!("{name}  (mined in {:.1}s wall)", t0.elapsed().as_secs_f64());
        println!("  k : count");
        for (k, c) in counts.iter().enumerate() {
            // sizes start at 2: Eclat does not count singletons
            if k >= 1 {
                println!("  {:>2} : {}", k + 1, c);
            }
        }
        let total: usize = counts.iter().skip(1).sum();
        println!("  total (k>=2): {total}\n");
    }
    println!("(expected shape per the paper: a rise to a peak around k=3..5, then a");
    println!(" geometric tail out to k≈10-12; smaller |D| at fixed support % yields");
    println!(" MORE frequent itemsets — compare D800K vs D1600K in §8.1)");
}
