//! Distributed-mining speedup bench: real TCP workers on loopback.
//!
//! Where `table2`/`fig7` replay the simulator's Memory Channel cost
//! model, `distbench` measures the real thing — a coordinator and `W`
//! [`eclat_net`] workers exchanging tid-lists over loopback sockets.
//! Each worker is a paper-style host mining its classes on `P` threads,
//! so the fleet sweeps an `H x P` matrix: pure multi-process rows
//! (`P = 1`) next to hybrid rows (`W x P` processors on `W` sockets).
//! Every run is checked against the sequential miner, so the table
//! doubles as an end-to-end correctness gate.
//!
//! ```text
//! cargo run -p repro-bench --bin distbench --release [-- \
//!     --transactions=20000 --support=0.25 --smoke \
//!     --threads=4 --mem-budget=65536 \
//!     --json=results/distbench.json]
//! ```
//!
//! `--smoke` shrinks the database and stops at `W = 2` for CI.
//! `--trace=PATH` arms the [`eclat_obs`] tracer for the whole sweep and
//! writes the span timeline as a JSONL artifact — the workers run
//! in-process here, so coordinator and worker phases land in one
//! single-process trace (use `eclat dmine --spawn-local --trace` for a
//! true multi-process cluster timeline).
//! `--threads=P` pins every row to `P` threads per worker instead of
//! sweeping the matrix; `--mem-budget=BYTES` caps each worker's
//! resident exchanged tid-lists, forcing the out-of-core class store
//! into the measurement (a bounded-RAM axis — the spill column reports
//! the bytes that moved through disk). The `--json` document embeds
//! each run's full [`mining_types::MiningStats`] report (per-phase
//! timings and the per-worker-thread `cluster` section), so
//! `scripts/stats_diff` can put a measured artifact next to a simulated
//! `eclat simulate --stats=json` one — the sim-vs-real Table 2 story.

use dbstore::HorizontalDb;
use eclat_net::{mine_distributed, start_worker, DistConfig, WorkerConfig};
use mining_types::json::{Arr, Obj};
use mining_types::MinSupport;
use questgen::{QuestGenerator, QuestParams};
use repro_bench::{row, Args};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let transactions: usize = args
        .get("transactions")
        .map(|s| s.parse().expect("--transactions"))
        .unwrap_or(if smoke { 5_000 } else { 20_000 });
    let support: f64 = args
        .get("support")
        .map(|s| s.parse().expect("--support must be a number (percent)"))
        .unwrap_or(0.25);
    let forced_threads: Option<usize> = args
        .get("threads")
        .map(|s| s.parse().expect("--threads must be a thread count"));
    let mem_budget: Option<u64> = args
        .get("mem-budget")
        .map(|s| s.parse().expect("--mem-budget must be bytes"));
    if args.get("trace").is_some() {
        // Identity (run id + coordinator rank) is stamped by each
        // mine_distributed call; only the enable flag goes here.
        eclat_obs::trace::set_enabled(true);
    }

    // (workers, threads-per-worker). The baseline is always the first
    // entry; P = 1 rows reproduce the old pure-process sweep, the rest
    // are hybrid H x P configurations.
    let fleet: Vec<(usize, usize)> = if let Some(p) = forced_threads {
        if smoke {
            vec![(1, p), (2, p)]
        } else {
            vec![(1, p), (2, p), (4, p), (8, p)]
        }
    } else if smoke {
        vec![(1, 1), (2, 1), (2, 2)]
    } else {
        vec![
            (1, 1),
            (2, 1),
            (4, 1),
            (8, 1),
            (1, 4),
            (2, 2),
            (2, 4),
            (4, 2),
        ]
    };

    let params = QuestParams::t10_i6(transactions).with_seed(0xD157);
    let name = params.name();
    eprintln!("[distbench] generating {name} ...");
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let minsup = MinSupport::from_percent(support);

    eprintln!("[distbench] sequential oracle at {support}% ...");
    let t0 = Instant::now();
    let oracle = eclat::sequential::mine(&db, minsup);
    let seq_secs = t0.elapsed().as_secs_f64();
    println!(
        "distbench: {name} @ {support}% — {} frequent itemsets, sequential {seq_secs:.3}s",
        oracle.len()
    );

    let widths = [7usize, 7, 10, 8, 10, 14, 12];
    let header: Vec<String> = [
        "workers",
        "threads",
        "wall s",
        "speedup",
        "imbalance",
        "exchange B",
        "spill B",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let mut runs = Arr::new();
    let mut base_secs = None;
    for &(w, p) in &fleet {
        let worker_cfg = WorkerConfig {
            threads: p,
            mem_budget,
            ..WorkerConfig::default()
        };
        let workers: Vec<_> = (0..w)
            .map(|_| start_worker(&worker_cfg).expect("start worker"))
            .collect();
        let addrs: Vec<String> = workers.iter().map(|h| h.addr().to_string()).collect();
        let t = Instant::now();
        let report =
            mine_distributed(&db, minsup, &addrs, &DistConfig::default()).expect("distributed run");
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(
            report.frequent, oracle,
            "W={w} P={p} diverged from the sequential miner"
        );
        let base = *base_secs.get_or_insert(wall);
        let speedup = base / wall;
        let cluster = report
            .stats
            .cluster
            .as_ref()
            .expect("dist runs carry a cluster section");
        let bytes: u64 = cluster
            .procs
            .iter()
            .map(|p| p.bytes_sent + p.bytes_received)
            .sum();
        let spill_bytes = report.spill_bytes_written + report.spill_bytes_read;
        println!(
            "{}",
            row(
                &[
                    w.to_string(),
                    p.to_string(),
                    format!("{wall:.3}"),
                    format!("{speedup:.2}"),
                    format!("{:.2}", cluster.load_imbalance),
                    bytes.to_string(),
                    spill_bytes.to_string(),
                ],
                &widths
            )
        );
        runs.raw(
            &Obj::new()
                .u64("workers", w as u64)
                .u64("threads_per_worker", p as u64)
                .u64("mem_budget_bytes", mem_budget.unwrap_or(u64::MAX))
                .f64("wall_secs", wall)
                .f64("speedup", speedup)
                .f64("load_imbalance", cluster.load_imbalance)
                .u64("exchange_bytes", bytes)
                .u64("spill_bytes_written", report.spill_bytes_written)
                .u64("spill_bytes_read", report.spill_bytes_read)
                .raw("stats", &report.stats.to_json(false))
                .finish(),
        );
    }

    if let Some(path) = args.json_out() {
        let doc = Obj::new()
            .str("bench", "distbench")
            .raw("smoke", if smoke { "true" } else { "false" })
            .str("database", &name)
            .u64("transactions", transactions as u64)
            .f64("support_percent", support)
            .u64("num_frequent", oracle.len() as u64)
            .f64("sequential_secs", seq_secs)
            .raw("runs", &runs.finish())
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[distbench] wrote {path}");
    }

    if let Some(path) = args.get("trace") {
        std::fs::write(path, eclat_obs::trace::render_jsonl()).expect("write --trace output");
        eprintln!("[distbench] wrote trace {path}");
    }
}
