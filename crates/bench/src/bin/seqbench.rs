//! Sequence-mining benchmark: generates a Quest-style sequence
//! database and runs the SPADE kernel under every execution policy,
//! equality-asserting parallel results against sequential before
//! reporting times, then sweeps `--maxlen` to show how the cap trades
//! pattern depth for work.
//!
//! ```text
//! cargo run -p repro-bench --bin seqbench --release [-- \
//!     --sequences=5000 --support=1.0 --smoke --json=results/seqbench.json]
//! ```
//!
//! Like `streambench`, the bench doubles as a correctness gate: a
//! parallel run whose frequent set, supports, or merged op counts
//! diverge from the sequential baseline aborts the run instead of
//! printing a meaningless speedup. `scripts/check.sh` runs `--smoke`.

use eclat::executor::TaskExecutor;
use eclat::pipeline::{FixedThreads, Rayon, Serial};
use eclat_seq::{mine_stats, FrequentSequences, SeqConfig, SeqDb, SeqStats};
use mining_types::json::{Arr, Obj};
use mining_types::stats::MiningStats;
use mining_types::{MinSupport, OpMeter};
use questgen::{SeqGenerator, SeqParams};
use repro_bench::{row, Args};
use std::time::Instant;

/// One timed run under a named policy.
struct PolicyRow {
    policy: &'static str,
    frequent: u64,
    total_ops_joins: u64,
    secs: f64,
    speedup: f64,
}

/// One point of the `--maxlen` sweep.
struct MaxlenRow {
    maxlen: u64,
    frequent: u64,
    deepest: u64,
    secs: f64,
}

/// A deferred mining run: `(policy name, thunk)`.
type PolicyRun<'a> = (
    &'static str,
    Box<dyn Fn() -> (FrequentSequences, MiningStats, f64) + 'a>,
);

fn timed_mine(
    db: &SeqDb,
    minsup: MinSupport,
    cfg: &SeqConfig,
    policy: &impl TaskExecutor,
    variant: &str,
) -> (FrequentSequences, MiningStats, f64) {
    let mut meter = OpMeter::new();
    let t0 = Instant::now();
    let (fs, stats) = mine_stats(db, minsup, cfg, &mut meter, policy, variant);
    (fs, stats, t0.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let sequences: usize = args
        .get("sequences")
        .map(|s| s.parse().expect("--sequences"))
        .unwrap_or(if smoke { 400 } else { 4_000 });
    let support_percent: f64 = args
        .get("support")
        .map(|s| s.parse().expect("--support"))
        .unwrap_or(if smoke { 2.0 } else { 1.0 });
    let threads: usize = args
        .get("threads")
        .map(|s| s.parse().expect("--threads"))
        .unwrap_or(0);

    let params = SeqParams::c10_t4(sequences).with_seed(0x5EB0);
    eprintln!("[seqbench] generating {} ...", params.name());
    let db = SeqDb::from_events(SeqGenerator::new(params).generate_all_raw());
    let minsup = MinSupport::from_percent(support_percent);
    eprintln!(
        "[seqbench] {} sequences, {} events, {} item occurrences; support {support_percent}%",
        db.num_sequences(),
        db.num_events(),
        db.num_item_occurrences()
    );

    // --- Policy comparison: parallel runs must reproduce sequential
    // byte-for-byte (patterns, supports, and merged op counts).
    let cfg = SeqConfig::default();
    let (base_fs, base_stats, base_secs) = timed_mine(&db, minsup, &cfg, &Serial, "sequential");
    let mut policies = vec![PolicyRow {
        policy: "sequential",
        frequent: base_fs.len() as u64,
        total_ops_joins: base_stats.total_ops.tid_cmp,
        secs: base_secs,
        speedup: 1.0,
    }];
    let parallel: [PolicyRun; 2] = [
        (
            "rayon",
            Box::new(|| timed_mine(&db, minsup, &cfg, &Rayon, "rayon")),
        ),
        (
            "threads",
            Box::new(|| timed_mine(&db, minsup, &cfg, &FixedThreads::new(threads), "threads")),
        ),
    ];
    for (name, run) in &parallel {
        let (fs, stats, secs) = run();
        assert_eq!(
            fs, base_fs,
            "{name}: parallel frequent sequences diverged from sequential"
        );
        assert_eq!(
            stats.total_ops, base_stats.total_ops,
            "{name}: merged op counts diverged from sequential"
        );
        policies.push(PolicyRow {
            policy: name,
            frequent: fs.len() as u64,
            total_ops_joins: stats.total_ops.tid_cmp,
            secs,
            speedup: base_secs / secs.max(1e-9),
        });
    }

    let widths = [12usize, 9, 12, 9, 8];
    println!(
        "{}",
        row(
            &["policy", "frequent", "join ops", "secs", "speedup"].map(String::from),
            &widths
        )
    );
    for p in &policies {
        println!(
            "{}",
            row(
                &[
                    p.policy.to_string(),
                    p.frequent.to_string(),
                    p.total_ops_joins.to_string(),
                    format!("{:.4}", p.secs),
                    format!("{:.2}x", p.speedup),
                ],
                &widths
            )
        );
    }

    // --- Maxlen ablation (serial, so rows are comparable): the cap
    // trims the deep tail of the search; maxlen=0 means unbounded.
    let deepest_full = base_fs
        .keys()
        .map(|p| p.len_items() as u64)
        .max()
        .unwrap_or(0);
    let mut sweep: Vec<u64> = (1..=3).collect();
    sweep.push(0);
    let mut ablation = Vec::with_capacity(sweep.len());
    for maxlen in sweep {
        let capped = SeqConfig {
            maxlen: (maxlen > 0).then_some(maxlen as u32),
            ..SeqConfig::default()
        };
        let (fs, _, secs) = timed_mine(&db, minsup, &capped, &Serial, "sequential");
        let deepest = fs.keys().map(|p| p.len_items() as u64).max().unwrap_or(0);
        if maxlen > 0 {
            assert!(
                deepest <= maxlen,
                "maxlen={maxlen} produced a deeper pattern"
            );
        } else {
            assert_eq!(fs, base_fs, "unbounded sweep row must match the baseline");
        }
        ablation.push(MaxlenRow {
            maxlen,
            frequent: fs.len() as u64,
            deepest,
            secs,
        });
    }

    let awidths = [9usize, 9, 9, 9];
    println!(
        "{}",
        row(
            &["maxlen", "frequent", "deepest", "secs"].map(String::from),
            &awidths
        )
    );
    for r in &ablation {
        println!(
            "{}",
            row(
                &[
                    if r.maxlen == 0 {
                        "none".to_string()
                    } else {
                        r.maxlen.to_string()
                    },
                    r.frequent.to_string(),
                    r.deepest.to_string(),
                    format!("{:.4}", r.secs),
                ],
                &awidths
            )
        );
    }
    println!(
        "seqbench: {} policies verified identical ({} frequent sequences, deepest {})",
        policies.len(),
        base_fs.len(),
        deepest_full
    );

    if let Some(path) = args.json_out() {
        let mut prow = Arr::new();
        for p in &policies {
            prow.raw(
                &Obj::new()
                    .str("policy", p.policy)
                    .u64("frequent", p.frequent)
                    .u64("join_ops", p.total_ops_joins)
                    .f64("secs", p.secs)
                    .f64("speedup", p.speedup)
                    .finish(),
            );
        }
        let mut arow = Arr::new();
        for r in &ablation {
            arow.raw(
                &Obj::new()
                    .u64("maxlen", r.maxlen)
                    .u64("frequent", r.frequent)
                    .u64("deepest", r.deepest)
                    .f64("secs", r.secs)
                    .finish(),
            );
        }
        let report = SeqStats::from_run(&db, &cfg, &base_fs, base_stats);
        let doc = Obj::new()
            .str("bench", "seqbench")
            .raw("smoke", if smoke { "true" } else { "false" })
            .u64("sequences", sequences as u64)
            .f64("support_percent", support_percent)
            .raw("policies", &prow.finish())
            .raw("maxlen_ablation", &arow.finish())
            .raw("seq_stats", &report.to_json())
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[seqbench] wrote {path}");
    }
}
