//! Regenerates **Table 1** — database properties.
//!
//! Paper row format: database name, |T| (average transaction size),
//! |D| (number of transactions), |I| (average maximal potentially
//! frequent itemset size), size in MB.
//!
//! ```text
//! cargo run -p repro-bench --bin table1 --release [-- --scale=paper]
//! ```

use questgen::{DatabaseStats, QuestGenerator};
use repro_bench::{row, Args};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    println!("Table 1: Database properties (scale: {scale:?})");
    println!("paper reference: T10.I6.D{{800K..6400K}}, |T|=10, |I|=6, N=1000, |L|=2000\n");
    let widths = [16, 6, 12, 6, 10, 10];
    println!(
        "{}",
        row(
            &["Database", "|T|", "|D|", "|I|", "Size(MB)", "meas.|T|"].map(String::from),
            &widths
        )
    );
    for params in scale.table1_databases() {
        let name = params.name();
        let predicted_mb = params.approx_size_mb();
        let gen = QuestGenerator::new(params.clone());
        let db = gen.generate_all();
        let stats = DatabaseStats::measure(&db);
        println!(
            "{}",
            row(
                &[
                    name,
                    format!("{}", params.avg_transaction_len as u64),
                    format!("{}", stats.num_transactions),
                    format!("{}", params.avg_pattern_len as u64),
                    format!("{:.1}", stats.size_mb()),
                    format!("{:.2}", stats.avg_transaction_len),
                ],
                &widths
            )
        );
        let _ = predicted_mb;
    }
    println!("\n(size = horizontal binary layout: (|D| + total items) × 4 bytes,");
    println!(" matching the paper's 35 MB–274 MB range at paper scale)");
}
