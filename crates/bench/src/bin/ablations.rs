//! Ablations A1–A6 (see DESIGN.md §5): quantifies each design choice the
//! paper calls out, using operation counts and simulated seconds.
//!
//! Pass `--json=PATH` to also write the machine-readable summary: the A1
//! short-circuit and A2 scheduling numbers, the per-representation kernel
//! counters (including the [`mining_types::KernelStats`] switch events),
//! and the full sequential [`mining_types::MiningStats`] report.
//!
//! ```text
//! cargo run -p repro-bench --bin ablations --release [-- --scale=tiny \
//!     --json=results/ablations.json]
//! ```

use dbstore::HorizontalDb;
use eclat::{EclatConfig, ScheduleHeuristic};
use memchannel::{ClusterConfig, CostModel};
use mining_types::json::{Arr, Obj};
use mining_types::{MinSupport, OpMeter};
use parbase::{CandidateDistConfig, CountDistConfig};
use questgen::QuestGenerator;
use repro_bench::Args;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let support = args.support_percent();
    let minsup = MinSupport::from_percent(support);
    let cost = CostModel::dec_alpha_1997();

    let params = scale.table2_databases()[0].clone();
    let name = params.name();
    eprintln!("[ablations] generating {name} ...");
    let txns = QuestGenerator::new(params).generate_all();
    let db = HorizontalDb::from_transactions(txns);
    println!("Ablations on {name}, support {support}% (simulated model: DEC Alpha 1997)\n");
    let json_path = args.json_out();
    let mut jdoc = Obj::new()
        .str("bench", "ablations")
        .str("database", &name)
        .f64("support_percent", support);

    // ---------- A1: short-circuited intersections (§5.3) ----------
    {
        let run = |sc: bool| {
            let mut m = OpMeter::new();
            let cfg = EclatConfig {
                short_circuit: sc,
                ..Default::default()
            };
            let fs = eclat::sequential::mine_with(&db, minsup, &cfg, &mut m);
            (fs.len(), m.tid_cmp)
        };
        let (n_on, cmp_on) = run(true);
        let (n_off, cmp_off) = run(false);
        assert_eq!(n_on, n_off);
        println!("A1  short-circuited intersections (§5.3)");
        println!("    tid comparisons   on: {cmp_on:>14}");
        println!("    tid comparisons  off: {cmp_off:>14}");
        println!(
            "    saved: {:.1}%\n",
            100.0 * (1.0 - cmp_on as f64 / cmp_off as f64)
        );
        jdoc = jdoc.raw(
            "short_circuit",
            &Obj::new()
                .u64("tid_cmp_on", cmp_on)
                .u64("tid_cmp_off", cmp_off)
                .finish(),
        );
    }

    // ---------- A2: equivalence-class scheduling heuristics (§5.2.1) ----------
    {
        println!("A2  class scheduling heuristics (§5.2.1), T=8 (H=8, P=1)");
        let topo = ClusterConfig::new(8, 1);
        let mut jrows = Arr::new();
        for h in [
            ScheduleHeuristic::GreedyPairs,
            ScheduleHeuristic::SupportWeighted,
            ScheduleHeuristic::RoundRobin,
        ] {
            let cfg = EclatConfig {
                heuristic: h,
                ..Default::default()
            };
            let rep = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg);
            println!(
                "    {:<16} total {:>8.1}s  async-phase {:>8.1}s  imbalance {:.3}",
                format!("{h:?}"),
                rep.total_secs(),
                rep.timeline.phase_secs(eclat::cluster::PHASE_ASYNC),
                rep.assignment.imbalance(),
            );
            jrows.raw(
                &Obj::new()
                    .str("heuristic", &format!("{h:?}"))
                    .f64("total_secs", rep.total_secs())
                    .f64(
                        "async_secs",
                        rep.timeline.phase_secs(eclat::cluster::PHASE_ASYNC),
                    )
                    .f64("schedule_imbalance", rep.assignment.imbalance())
                    .f64(
                        "load_imbalance",
                        rep.stats.cluster.as_ref().map_or(1.0, |c| c.load_imbalance),
                    )
                    .finish(),
            );
        }
        jdoc = jdoc.raw("scheduling", &jrows.finish());
        println!();
    }

    // ---------- A3: candidate pruning in Eclat (§5.3) ----------
    {
        let run = |prune: bool| {
            let mut m = OpMeter::new();
            let cfg = EclatConfig {
                prune,
                ..Default::default()
            };
            eclat::sequential::mine_with(&db, minsup, &cfg, &mut m);
            m
        };
        let m_off = run(false);
        let m_on = run(true);
        println!("A3  candidate pruning in Eclat (§5.3: 'little or no help')");
        println!(
            "    intersections avoided: {} of {} candidates",
            m_off
                .cand_gen
                .saturating_sub(m_on.cand_gen.min(m_off.cand_gen)),
            m_off.cand_gen
        );
        println!(
            "    tid comparisons: {} (off) vs {} (on); extra subset probes: {}",
            m_off.tid_cmp, m_on.tid_cmp, m_on.hash_probe
        );
        let cost_off = cost.compute_ns(&m_off) / 1e9;
        let cost_on = cost.compute_ns(&m_on) / 1e9;
        println!("    modeled CPU seconds: {cost_off:.2} (off) vs {cost_on:.2} (on)\n");
    }

    // ---------- A4: L2 layout — horizontal triangle vs vertical 1-item intersections (§4.2) ----------
    {
        // Horizontal: C(|t|,2) increments per transaction.
        let mut m_h = OpMeter::new();
        let tri = eclat::transform::count_pairs(&db, 0..db.num_transactions(), &mut m_h);
        let threshold = minsup.count_threshold(db.num_transactions());
        let n_l2 = tri.frequent_pairs(threshold).count();
        // Vertical: intersect every pair of per-item tid-lists.
        let vert = dbstore::VerticalDb::from_horizontal(&db);
        let items: Vec<_> = vert.iter().map(|(i, _)| i).collect();
        let mut vertical_ops = 0u64;
        for (a_pos, &a) in items.iter().enumerate() {
            for &b in &items[a_pos + 1..] {
                vertical_ops += (vert.tidlist(a).len() + vert.tidlist(b).len()) as u64;
            }
        }
        println!("A4  L2 counting layout (§4.2's 4.5·10^7 vs 10^9 argument)");
        println!(
            "    horizontal triangular increments: {:>14}",
            m_h.pair_incr
        );
        println!("    vertical pairwise-intersection ops: {vertical_ops:>12}");
        println!(
            "    vertical/horizontal ratio: {:.1}x  (frequent pairs found: {n_l2})\n",
            vertical_ops as f64 / m_h.pair_incr as f64
        );
    }

    // ---------- A5: Candidate Distribution vs Count Distribution (§3.2) ----------
    {
        println!("A5  Candidate Distribution vs Count Distribution (§3.2), T=4 and T=8");
        for topo in [ClusterConfig::new(4, 1), ClusterConfig::new(8, 1)] {
            let cd =
                parbase::mine_count_dist(&db, minsup, &topo, &cost, &CountDistConfig::default());
            let cand = parbase::mine_candidate_dist(
                &db,
                minsup,
                &topo,
                &cost,
                &CandidateDistConfig::default(),
            );
            assert_eq!(cd.frequent, cand.frequent);
            println!(
                "    {:<12} CD {:>8.1}s   CandD {:>8.1}s   CandD/CD {:.2}",
                topo.label(),
                cd.total_secs(),
                cand.total_secs(),
                cand.total_secs() / cd.total_secs()
            );
        }
        println!();
    }

    // ---------- A6: hybrid parallelization (§8.1/§9) ----------
    {
        println!("A6  hybrid host-level parallelization (§8.1/§9 future work)");
        for topo in [
            ClusterConfig::new(2, 4),
            ClusterConfig::new(4, 2),
            ClusterConfig::new(8, 1),
        ] {
            let flat = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
            let hy = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &Default::default());
            assert_eq!(flat.frequent, hy.frequent);
            println!(
                "    {:<12} flat {:>8.1}s   hybrid {:>8.1}s   speedup {:.2}",
                topo.label(),
                flat.total_secs(),
                hy.total_secs(),
                flat.total_secs() / hy.total_secs()
            );
        }
        println!();
    }

    // ---------- bonus: vertical representation axis ----------
    {
        println!("EXT vertical representation — tid-lists vs diffsets vs mid-recursion");
        println!("    auto-switch; element touches in the recursive phase:");
        let run = |repr| {
            let cfg = eclat::EclatConfig::with_representation(repr);
            let mut m = OpMeter::new();
            let (fs, stats) = eclat::sequential::mine_stats(&db, minsup, &cfg, &mut m);
            (fs, m, stats)
        };
        let mut jrows = Arr::new();
        let (fs_ref, m_ref, stats_ref) = run(eclat::Representation::TidList);
        println!(
            "    {:<18} {:>14} element comparisons",
            "tid-lists:", m_ref.tid_cmp
        );
        let jrow = |stats: &mining_types::MiningStats, m: &OpMeter| {
            let k = stats.kernel_totals();
            Obj::new()
                .str("representation", &stats.representation)
                .u64("tid_cmp", m.tid_cmp)
                .u64("switch_events", k.switch_events)
                .u64("peak_tid_bytes", k.peak_tid_bytes)
                .finish()
        };
        jrows.raw(&jrow(&stats_ref, &m_ref));
        for (label, repr) in [
            ("diffsets:", eclat::Representation::Diffset),
            (
                "auto-switch(d=1):",
                eclat::Representation::AutoSwitch { depth: 1 },
            ),
            (
                "auto-switch(d=2):",
                eclat::Representation::AutoSwitch { depth: 2 },
            ),
            (
                "auto-switch(d=3):",
                eclat::Representation::AutoSwitch { depth: 3 },
            ),
        ] {
            let (fs, m, stats) = run(repr);
            assert_eq!(fs, fs_ref);
            println!("    {label:<18} {:>14} element comparisons", m.tid_cmp);
            jrows.raw(&jrow(&stats, &m));
        }
        // Galloping tid-list intersections (skewed-operand kernel knob).
        {
            let cfg = eclat::EclatConfig {
                gallop: true,
                ..Default::default()
            };
            let mut m = OpMeter::new();
            let (fs, stats) = eclat::sequential::mine_stats(&db, minsup, &cfg, &mut m);
            assert_eq!(fs, fs_ref);
            println!(
                "    {:<18} {:>14} element comparisons",
                "tidlist+gallop:", m.tid_cmp
            );
            let k = stats.kernel_totals();
            jrows.raw(
                &Obj::new()
                    .str("representation", "tidlist+gallop")
                    .u64("tid_cmp", m.tid_cmp)
                    .u64("switch_events", k.switch_events)
                    .u64("peak_tid_bytes", k.peak_tid_bytes)
                    .finish(),
            );
        }
        jdoc = jdoc
            .raw("representations", &jrows.finish())
            .raw("sequential_stats", &stats_ref.to_json(true));
    }

    // ---------- bonus: representation × density matrix ----------
    {
        println!("\nEXT representation × density — bitmap vs merge kernels");
        let d = scale.table2_databases()[0].num_transactions;
        let reprs: [(&str, eclat::Representation); 5] = [
            ("tidlist", eclat::Representation::TidList),
            ("diffset", eclat::Representation::Diffset),
            (
                "autoswitch:2",
                eclat::Representation::AutoSwitch { depth: 2 },
            ),
            ("bitmap", eclat::Representation::Bitmap),
            (
                "auto-density:8",
                eclat::Representation::AutoDensity { permille: 8 },
            ),
        ];
        let mut jrows = Arr::new();
        let mut dense_cmp: Vec<(String, u64, f64)> = Vec::new();
        for (db_label, params) in [
            ("dense", questgen::QuestParams::dense(d, 0xD15E)),
            ("sparse", questgen::QuestParams::sparse(d, 0x5845)),
        ] {
            let txns = QuestGenerator::new(params).generate_all();
            let ddb = HorizontalDb::from_transactions(txns);
            let dsup = MinSupport::from_percent(if db_label == "dense" { 25.0 } else { 0.25 });
            println!("    database: {db_label} (D={d})");
            let mut fs_ref = None;
            for (label, repr) in &reprs {
                let cfg = eclat::EclatConfig::with_representation(*repr);
                let mut m = OpMeter::new();
                // Warm once, then time the measured run.
                eclat::sequential::mine_with(&ddb, dsup, &cfg, &mut OpMeter::new());
                let t = std::time::Instant::now();
                let (fs, stats) = eclat::sequential::mine_stats(&ddb, dsup, &cfg, &mut m);
                let secs = t.elapsed().as_secs_f64();
                match &fs_ref {
                    None => fs_ref = Some(fs),
                    Some(r) => assert_eq!(&fs, r, "{db_label}/{label} diverged"),
                }
                let k = stats.kernel_totals();
                println!(
                    "      {label:<16} {:>12} element ops  {secs:>8.3}s  peak {:>10} B",
                    m.tid_cmp, k.peak_tid_bytes
                );
                if db_label == "dense" {
                    dense_cmp.push((label.to_string(), m.tid_cmp, secs));
                }
                jrows.raw(
                    &Obj::new()
                        .str("database", db_label)
                        .str("representation", label)
                        .u64("tid_cmp", m.tid_cmp)
                        .f64("secs", secs)
                        .u64("peak_tid_bytes", k.peak_tid_bytes)
                        .finish(),
                );
            }
        }
        // The bitmap win the representation was built for: on the dense
        // database its word-wise AND+popcount does strictly fewer metered
        // element operations than the tid-list merge, and auto-density
        // must match it there (dense classes all cross the 8‰ threshold).
        let ops_of = |name: &str| {
            dense_cmp
                .iter()
                .find(|(l, _, _)| l == name)
                .map(|&(_, ops, _)| ops)
                .unwrap()
        };
        let (tl_ops, bm_ops, ad_ops) = (
            ops_of("tidlist"),
            ops_of("bitmap"),
            ops_of("auto-density:8"),
        );
        println!(
            "    dense-db bitmap win: {:.2}x fewer element ops than tid-lists",
            tl_ops as f64 / bm_ops as f64
        );
        assert!(
            bm_ops < tl_ops,
            "bitmap should beat tid-list merges on the dense database: {bm_ops} vs {tl_ops}"
        );
        assert!(
            ad_ops <= tl_ops,
            "auto-density should never lose to plain tid-lists on the dense db: {ad_ops} vs {tl_ops}"
        );
        jdoc = jdoc.raw("representation_density", &jrows.finish());
        println!();
    }

    // ---------- bonus: maximal mining × representation ----------
    {
        println!("\nEXT maximal mining (MaxEclat) across representations");
        let oracle = eclat::maximal::maximal_of(&eclat::sequential::mine(&db, minsup));
        let mut jrows = Arr::new();
        for (label, repr) in [
            ("tid-lists:", eclat::Representation::TidList),
            ("diffsets:", eclat::Representation::Diffset),
            (
                "auto-switch(d=2):",
                eclat::Representation::AutoSwitch { depth: 2 },
            ),
        ] {
            let cfg = eclat::EclatConfig::with_representation(repr);
            let mut m = OpMeter::new();
            let (fs, stats) = eclat::maximal::mine_maximal_stats(&db, minsup, &cfg, &mut m);
            assert_eq!(fs, oracle);
            let k = stats.kernel_totals();
            println!(
                "    {label:<18} {:>12} tid cmps  {:>6} switch events  {:>6} maximal sets",
                m.tid_cmp,
                k.switch_events,
                fs.len()
            );
            jrows.raw(
                &Obj::new()
                    .str("representation", &stats.representation)
                    .u64("tid_cmp", m.tid_cmp)
                    .u64("switch_events", k.switch_events)
                    .u64("count", fs.len() as u64)
                    .finish(),
            );
        }
        jdoc = jdoc.raw("maximal_representations", &jrows.finish());
        println!();
    }

    // ---------- bonus: observability overhead ----------
    {
        println!("EXT tracing overhead — disabled fast path vs armed rings");
        let mine_secs = || {
            let t = std::time::Instant::now();
            let fs = eclat::sequential::mine_with(
                &db,
                minsup,
                &EclatConfig::default(),
                &mut OpMeter::new(),
            );
            (t.elapsed().as_secs_f64(), fs.len())
        };
        let (warm, _) = mine_secs(); // prime caches/allocator
        let (off_a, _) = mine_secs();
        let (off_b, _) = mine_secs();
        let off = off_a.min(off_b);
        eclat_obs::trace::set_identity(0xAB1A, 0);
        eclat_obs::trace::set_enabled(true);
        let (on, _) = mine_secs();
        eclat_obs::trace::set_enabled(false);
        let events = eclat_obs::trace::drain().events.len();
        println!("    disabled: {off:.3}s  (best of 2, warmup {warm:.3}s)");
        println!("    enabled : {on:.3}s  ({events} events recorded)");
        // Gate, not just a report: the disabled path is one relaxed
        // atomic load per span, so two disabled runs must stay in the
        // same ballpark (generous noise margin for CI), and armed rings
        // must not blow the run up either.
        assert!(
            off_a <= off_b * 1.5 + 0.05 && off_b <= off_a * 1.5 + 0.05,
            "disabled-tracing runs diverged: {off_a:.3}s vs {off_b:.3}s"
        );
        assert!(
            on <= off * 2.0 + 0.10,
            "armed tracing too expensive: {on:.3}s vs disabled {off:.3}s"
        );
        assert!(events > 0, "armed run recorded no events");
        jdoc = jdoc.raw(
            "tracing_overhead",
            &Obj::new()
                .f64("disabled_secs", off)
                .f64("enabled_secs", on)
                .u64("events_recorded", events as u64)
                .finish(),
        );
        println!();
    }

    if let Some(path) = json_path {
        repro_bench::write_json(path, &jdoc.finish()).expect("write --json output");
        eprintln!("[ablations] wrote {path}");
    }
}
