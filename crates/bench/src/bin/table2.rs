//! Regenerates **Table 2** — total execution time: Eclat vs Count
//! Distribution across processor configurations and databases, with the
//! Eclat setup break-up and the improvement ratio.
//!
//! Times are *simulated* seconds from the Memory Channel cluster model
//! (DESIGN.md §4): absolute values are calibration-dependent; the
//! *shape* — who wins, by what factor, and how the factor moves with
//! configuration — is the reproduction target.
//!
//! ```text
//! cargo run -p repro-bench --bin table2 --release [-- --scale=small \
//!     --support=0.25 --large-configs --with-candidate-dist \
//!     --schedule=greedy|roundrobin|support --json=results/table2.json]
//! ```
//!
//! `--json=PATH` additionally writes one row per (database, config) cell
//! with the embedded [`mining_types::MiningStats`] report of the Eclat
//! run (per-phase simulated seconds, per-processor split, kernel work).

use dbstore::HorizontalDb;
use eclat::{EclatConfig, ScheduleHeuristic};
use memchannel::CostModel;
use mining_types::json::{Arr, Obj};
use mining_types::MinSupport;
use parbase::{CandidateDistConfig, CountDistConfig};
use questgen::QuestGenerator;
use repro_bench::{row, table2_configs, Args};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let support = args.support_percent();
    let minsup = MinSupport::from_percent(support);
    let cost = CostModel::dec_alpha_1997();
    let heuristic = match args.get("schedule") {
        Some("roundrobin") => ScheduleHeuristic::RoundRobin,
        Some("support") => ScheduleHeuristic::SupportWeighted,
        _ => ScheduleHeuristic::GreedyPairs,
    };
    let eclat_cfg = EclatConfig {
        heuristic,
        ..EclatConfig::default()
    };
    let with_cand = args.has("with-candidate-dist");
    let configs = table2_configs(args.has("large-configs"));
    let json_path = args.json_out();
    let mut json_rows = Arr::new();

    println!("Table 2: Total Execution Time — Eclat (E) vs Count Distribution (CD)");
    println!("scale {scale:?}, support {support}%, schedule {heuristic:?}, simulated seconds\n");
    let mut widths = vec![14usize, 4, 4, 4, 10, 10, 10, 8];
    let mut header = vec![
        "Database", "P", "H", "T", "CD Total", "E Total", "E Setup", "CD/E",
    ];
    if with_cand {
        widths.push(10);
        header.push("CandD");
    }
    let header: Vec<String> = header.into_iter().map(String::from).collect();
    println!("{}", row(&header, &widths));

    for params in scale.table2_databases() {
        let name = params.name();
        eprintln!("[table2] generating {name} ...");
        let txns = QuestGenerator::new(params).generate_all();
        let db = HorizontalDb::from_transactions(txns);
        for cfg in &configs {
            eprintln!("[table2] {name} {} ...", cfg.label());
            let cd = parbase::mine_count_dist(&db, minsup, cfg, &cost, &CountDistConfig::default());
            let ec = eclat::cluster::mine_cluster(&db, minsup, cfg, &cost, &eclat_cfg);
            // correctness cross-check on every cell
            let cd_pairs_up: mining_types::FrequentSet = cd
                .frequent
                .iter()
                .filter(|(is, _)| is.len() >= 2)
                .map(|(is, s)| (is.clone(), s))
                .collect();
            assert_eq!(cd_pairs_up, ec.frequent, "{name} {}", cfg.label());

            let mut cols = vec![
                name.clone(),
                format!("{}", cfg.procs_per_host),
                format!("{}", cfg.hosts),
                format!("{}", cfg.total()),
                format!("{:.1}", cd.total_secs()),
                format!("{:.1}", ec.total_secs()),
                format!("{:.1}", ec.setup_secs()),
                format!("{:.1}", cd.total_secs() / ec.total_secs()),
            ];
            if with_cand {
                let cand = parbase::mine_candidate_dist(
                    &db,
                    minsup,
                    cfg,
                    &cost,
                    &CandidateDistConfig::default(),
                );
                cols.push(format!("{:.1}", cand.total_secs()));
            }
            println!("{}", row(&cols, &widths));
            if json_path.is_some() {
                json_rows.raw(
                    &Obj::new()
                        .str("database", &name)
                        .u64("hosts", cfg.hosts as u64)
                        .u64("procs_per_host", cfg.procs_per_host as u64)
                        .u64("total_procs", cfg.total() as u64)
                        .f64("cd_total_secs", cd.total_secs())
                        .f64("eclat_total_secs", ec.total_secs())
                        .f64("eclat_setup_secs", ec.setup_secs())
                        .f64("cd_over_eclat", cd.total_secs() / ec.total_secs())
                        .raw("stats", &ec.stats.to_json(false))
                        .finish(),
                );
            }
        }
        println!();
    }
    println!("(paper shape: CD/E between 5 and 18 sequential, up to ~70 parallel;");
    println!(" Eclat setup = init + transformation, dominating 55-60% of E Total)");

    if let Some(path) = json_path {
        let doc = Obj::new()
            .str("bench", "table2")
            .str("scale", &format!("{scale:?}"))
            .f64("support_percent", support)
            .raw("rows", &json_rows.finish())
            .finish();
        repro_bench::write_json(path, &doc).expect("write --json output");
        eprintln!("[table2] wrote {path}");
    }
}
