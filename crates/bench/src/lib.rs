//! Reproduction harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper, and for the Criterion benches.
//!
//! | artifact | binary | paper section |
//! |----------|--------|---------------|
//! | Table 1 (database properties) | `table1` | §8 |
//! | Figure 6 (frequent k-itemsets) | `fig6` | §8 |
//! | Table 2 (Eclat vs Count Distribution) | `table2` | §8.1 |
//! | Figure 7 (Eclat speedups) | `fig7` | §8.1 |
//! | Ablations A1–A6 | `ablations` | §5.2.1, §5.3, §3.2, §8.1 |
//!
//! All binaries accept `--scale=tiny|small|medium|paper` (default
//! `small`) and `--support=<percent>`; scaled runs shrink `|D|` while
//! keeping `T10.I6` structure — Figure 6's shape and Table 2's ratios are
//! determined by the frequency structure, not by `|D|` (DESIGN.md §4).
//!
//! `table2`, `fig7`, and `ablations` additionally accept `--json=PATH`
//! and then write a machine-readable document (embedding the structured
//! [`mining_types::MiningStats`] reports) alongside the text output —
//! `scripts/bench_json.sh` regenerates `results/*.json` this way.

use memchannel::ClusterConfig;
use questgen::QuestParams;

/// A named reproduction scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (seconds): D ∈ {5K, 10K, 20K}.
    Tiny,
    /// Default laptop scale (minutes): D ∈ {50K, 100K, 200K}.
    Small,
    /// Extended scale: D ∈ {200K, 400K, 800K}.
    Medium,
    /// The paper's sizes: D ∈ {800K, 1600K, 3200K} (hours; needs RAM).
    Paper,
}

impl Scale {
    /// Parse from a CLI token.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The three `T10.I6` databases of Table 2 at this scale.
    pub fn table2_databases(&self) -> Vec<QuestParams> {
        let ds: [usize; 3] = match self {
            Scale::Tiny => [5_000, 10_000, 20_000],
            Scale::Small => [50_000, 100_000, 200_000],
            Scale::Medium => [200_000, 400_000, 800_000],
            Scale::Paper => [800_000, 1_600_000, 3_200_000],
        };
        ds.iter().map(|&d| QuestParams::t10_i6(d)).collect()
    }

    /// The four databases of Table 1 / Figure 6 at this scale.
    pub fn table1_databases(&self) -> Vec<QuestParams> {
        let ds: [usize; 4] = match self {
            Scale::Tiny => [5_000, 10_000, 20_000, 40_000],
            Scale::Small => [50_000, 100_000, 200_000, 400_000],
            Scale::Medium => [200_000, 400_000, 800_000, 1_600_000],
            Scale::Paper => [800_000, 1_600_000, 3_200_000, 6_400_000],
        };
        ds.iter().map(|&d| QuestParams::t10_i6(d)).collect()
    }

    /// Default minimum support (percent) at this scale.
    ///
    /// The paper uses 0.1 %, and because Quest pattern frequencies scale
    /// linearly with |D|, the *same percentage* reproduces the same
    /// frequency structure at every scale — so 0.1 % is the default
    /// everywhere (only ceil-rounding of tiny thresholds differs).
    pub fn default_support_percent(&self) -> f64 {
        0.1
    }
}

/// The processor configurations of Table 2 / Figure 7 (paper notation
/// `P` = processors/host, `H` = hosts), capped for the chosen scale.
pub fn table2_configs(include_large: bool) -> Vec<ClusterConfig> {
    let mut v = vec![
        ClusterConfig::new(1, 1), // sequential
        ClusterConfig::new(2, 1), // H=2, P=1
        ClusterConfig::new(2, 2), // H=2, P=2
        ClusterConfig::new(4, 1),
        ClusterConfig::new(2, 4),
        ClusterConfig::new(4, 2),
        ClusterConfig::new(8, 1),
    ];
    if include_large {
        v.extend([
            ClusterConfig::new(4, 4),
            ClusterConfig::new(8, 2),
            ClusterConfig::new(8, 3),
            ClusterConfig::new(8, 4), // the full 32-processor testbed
        ]);
    }
    v
}

/// Tiny CLI parser: `--key=value` flags plus bare flags.
#[derive(Debug, Default)]
pub struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse `std::env::args` (skipping the binary name).
    pub fn from_env() -> Args {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse from any iterator of tokens.
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut flags = Vec::new();
        for tok in iter {
            let tok = tok.trim_start_matches('-').to_string();
            match tok.split_once('=') {
                Some((k, v)) => flags.push((k.to_string(), Some(v.to_string()))),
                None => flags.push((tok, None)),
            }
        }
        Args { flags }
    }

    /// Value of `--key=...`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether a bare `--key` (or `--key=...`) was passed.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    /// The scale (default [`Scale::Small`]).
    pub fn scale(&self) -> Scale {
        self.get("scale")
            .map(|s| Scale::parse(s).unwrap_or_else(|| panic!("unknown scale '{s}'")))
            .unwrap_or(Scale::Small)
    }

    /// Support percent (default = scale default).
    pub fn support_percent(&self) -> f64 {
        self.get("support")
            .map(|s| s.parse().expect("--support must be a number (percent)"))
            .unwrap_or_else(|| self.scale().default_support_percent())
    }

    /// Output path of `--json=PATH`, if requested.
    pub fn json_out(&self) -> Option<&str> {
        self.get("json")
    }
}

/// Write a JSON document to `path` (creating parent directories), with a
/// trailing newline.
pub fn write_json(path: &str, json: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut doc = json.to_string();
    if !doc.ends_with('\n') {
        doc.push('\n');
    }
    std::fs::write(path, doc)
}

/// Render a row of fixed-width columns.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    cols.iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn paper_scale_matches_table1() {
        let dbs = Scale::Paper.table1_databases();
        assert_eq!(dbs[0].name(), "T10.I6.D800K");
        assert_eq!(dbs[3].name(), "T10.I6.D6400K");
        assert_eq!(Scale::Paper.default_support_percent(), 0.1);
    }

    #[test]
    fn configs_include_the_full_testbed() {
        let cfgs = table2_configs(true);
        assert!(cfgs.iter().any(|c| c.total() == 32));
        assert_eq!(cfgs[0].total(), 1);
        let small = table2_configs(false);
        assert!(small.iter().all(|c| c.total() <= 8));
    }

    #[test]
    fn args_parsing() {
        let a = Args::from_tokens(
            ["--scale=tiny", "--support=0.5", "--hybrid"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale(), Scale::Tiny);
        assert_eq!(a.support_percent(), 0.5);
        assert!(a.has("hybrid"));
        assert!(!a.has("paper"));
        // default support follows scale
        let b = Args::from_tokens(std::iter::empty());
        assert_eq!(b.support_percent(), 0.1);
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a    bb");
    }

    #[test]
    fn json_out_flag_and_writer() {
        let a = Args::from_tokens(["--json=/tmp/x.json".to_string()]);
        assert_eq!(a.json_out(), Some("/tmp/x.json"));
        assert_eq!(Args::from_tokens(std::iter::empty()).json_out(), None);

        let path = std::env::temp_dir()
            .join(format!("repro-bench-{}/doc.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        write_json(&path, "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}\n");
        std::fs::remove_file(&path).unwrap();
    }
}
