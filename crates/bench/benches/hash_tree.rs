//! Microbenchmarks of the Apriori candidate hash tree (§2): insertion,
//! exact search, and per-transaction subset counting — the "most compute
//! intensive step" whose cost Eclat's intersections replace.

use apriori::hash_tree::HashTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mining_types::{ItemId, Itemset, OpMeter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn candidates(rng: &mut StdRng, n: usize, k: usize, universe: u32) -> Vec<Itemset> {
    let mut out = mining_types::FxHashSet::default();
    while out.len() < n {
        let items: Vec<ItemId> = (0..k * 3)
            .map(|_| ItemId(rng.random_range(0..universe)))
            .collect();
        let is = Itemset::from_unsorted(items);
        if is.len() >= k {
            out.insert(Itemset::from_sorted(is.items()[..k].to_vec()));
        }
    }
    out.into_iter().collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("hash_tree/insert");
    for n in [1_000usize, 10_000] {
        let cands = candidates(&mut rng, n, 3, 500);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = HashTree::new(3);
                for is in &cands {
                    t.insert(is.clone());
                }
                black_box(t.len())
            })
        });
    }
    group.finish();
}

fn bench_count_transaction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let cands = candidates(&mut rng, 10_000, 3, 500);
    let tree = HashTree::from_candidates(3, cands);
    let mut group = c.benchmark_group("hash_tree/count_transaction");
    for txn_len in [10usize, 20, 40] {
        let txn: Vec<ItemId> = {
            let mut v: Vec<u32> = (0..txn_len as u32 * 3)
                .map(|_| rng.random_range(0..500))
                .collect();
            v.sort_unstable();
            v.dedup();
            v.truncate(txn_len);
            v.into_iter().map(ItemId).collect()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(txn_len),
            &txn_len,
            |bench, _| {
                bench.iter(|| {
                    let mut m = OpMeter::new();
                    tree.count_transaction(&txn, &mut m);
                    black_box(m.subsets_gen)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert, bench_count_transaction
}
criterion_main!(benches);
