//! A4: the §4.2 layout argument for `L2` — horizontal triangular
//! counting vs vertical pairwise 1-item tid-list intersections.
//!
//! The paper computes ~4.5·10⁷ horizontal operations vs ~10⁹ vertical
//! operations for 1M transactions; this bench measures the real gap at
//! a scaled size, which is why Eclat "uses the horizontal layout for
//! generating L2 and uses the vertical layout thereafter".

use criterion::{criterion_group, criterion_main, Criterion};
use dbstore::{HorizontalDb, VerticalDb};
use mining_types::OpMeter;
use questgen::{QuestGenerator, QuestParams};
use std::hint::black_box;

fn db() -> HorizontalDb {
    // keep the universe modest so the vertical pairing is feasible
    let params = QuestParams {
        num_items: 200,
        num_patterns: 400,
        ..QuestParams::t10_i6(20_000)
    };
    HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all())
}

fn bench_l2(c: &mut Criterion) {
    let db = db();
    let vert = VerticalDb::from_horizontal(&db);
    let mut group = c.benchmark_group("l2_counting");
    group.sample_size(10);
    group.bench_function("horizontal_triangle", |bench| {
        bench.iter(|| {
            let mut m = OpMeter::new();
            black_box(eclat::transform::count_pairs(
                &db,
                0..db.num_transactions(),
                &mut m,
            ))
        })
    });
    group.bench_function("vertical_pairwise_intersections", |bench| {
        bench.iter(|| {
            let items: Vec<_> = vert.iter().map(|(i, _)| i).collect();
            let mut total = 0u64;
            for (p, &a) in items.iter().enumerate() {
                for &b in &items[p + 1..] {
                    total += vert.tidlist(a).intersect_count(vert.tidlist(b)) as u64;
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_l2
}
criterion_main!(benches);
