//! Throughput of the Quest synthetic data generator (Table 1 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use questgen::{QuestGenerator, QuestParams};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("questgen/generate");
    group.sample_size(10);
    for d in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("t10_i6", d), &d, |bench, &d| {
            bench.iter(|| {
                let gen = QuestGenerator::new(QuestParams::t10_i6(d));
                black_box(gen.generate_all().len())
            })
        });
    }
    group.finish();
}

fn bench_vertical_transform(c: &mut Criterion) {
    let db = dbstore::HorizontalDb::from_transactions(
        QuestGenerator::new(QuestParams::t10_i6(50_000)).generate_all(),
    );
    let mut group = c.benchmark_group("dbstore/transform");
    group.sample_size(10);
    group.bench_function("horizontal_to_vertical_50k", |bench| {
        bench.iter(|| black_box(dbstore::VerticalDb::from_horizontal(&db)))
    });
    let vert = dbstore::VerticalDb::from_horizontal(&db);
    group.bench_function("vertical_to_horizontal_50k", |bench| {
        bench.iter(|| black_box(vert.to_horizontal(db.num_transactions())))
    });
    group.bench_function("binary_write_horizontal_50k", |bench| {
        bench.iter(|| {
            let mut buf = Vec::with_capacity(db.byte_size() as usize + 32);
            black_box(dbstore::binfmt::write_horizontal(&db, &mut buf).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generate, bench_vertical_transform
}
criterion_main!(benches);
