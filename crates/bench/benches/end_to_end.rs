//! End-to-end wall-clock mining on a scaled `T10.I6` database: sequential
//! Eclat vs Apriori vs the rayon-parallel Eclat, plus the recursive
//! kernel alone. Complements the simulated-time Table 2 with *real* times
//! on the build machine.

use criterion::{criterion_group, criterion_main, Criterion};
use dbstore::HorizontalDb;
use eclat::EclatConfig;
use mining_types::{MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};
use std::hint::black_box;

fn db() -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::t10_i6(20_000)).generate_all())
}

fn bench_miners(c: &mut Criterion) {
    let db = db();
    // 0.5% keeps Apriori's hash-tree pass affordable inside a benchmark
    let minsup = MinSupport::from_percent(0.5);
    let mut group = c.benchmark_group("end_to_end/t10_i6_d20k");
    group.sample_size(10);
    group.bench_function("eclat_sequential", |bench| {
        bench.iter(|| black_box(eclat::sequential::mine(&db, minsup).len()))
    });
    group.bench_function("eclat_rayon", |bench| {
        bench.iter(|| black_box(eclat::parallel::mine(&db, minsup).len()))
    });
    group.bench_function("apriori", |bench| {
        bench.iter(|| black_box(apriori::mine(&db, minsup).len()))
    });
    group.bench_function("eclat_no_short_circuit", |bench| {
        bench.iter(|| {
            let mut m = OpMeter::new();
            let cfg = EclatConfig {
                short_circuit: false,
                ..Default::default()
            };
            black_box(eclat::sequential::mine_with(&db, minsup, &cfg, &mut m).len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_miners
}
criterion_main!(benches);
