//! Microbenchmarks of the tid-list intersection kernels (§4.2 / §5.3):
//! two-pointer vs galloping vs adaptive, and the short-circuit win on
//! infrequent joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tidlist::TidList;

fn random_list(rng: &mut StdRng, len: usize, universe: u32) -> TidList {
    let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    TidList::of(&v)
}

fn bench_balanced(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("intersect/balanced");
    for len in [1_000usize, 10_000, 100_000] {
        let a = random_list(&mut rng, len, (len * 4) as u32);
        let b = random_list(&mut rng, len, (len * 4) as u32);
        group.bench_with_input(BenchmarkId::new("two_pointer", len), &len, |bench, _| {
            bench.iter(|| black_box(a.intersect(&b)))
        });
        group.bench_with_input(BenchmarkId::new("gallop", len), &len, |bench, _| {
            bench.iter(|| black_box(a.gallop_intersect(&b)))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", len), &len, |bench, _| {
            bench.iter(|| black_box(a.intersect_adaptive(&b)))
        });
        group.bench_with_input(BenchmarkId::new("count_only", len), &len, |bench, _| {
            bench.iter(|| black_box(a.intersect_count(&b)))
        });
    }
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("intersect/skewed_1_to_100");
    for long_len in [10_000usize, 100_000] {
        let short = random_list(&mut rng, long_len / 100, (long_len * 2) as u32);
        let long = random_list(&mut rng, long_len, (long_len * 2) as u32);
        group.bench_with_input(
            BenchmarkId::new("two_pointer", long_len),
            &long_len,
            |bench, _| bench.iter(|| black_box(short.intersect(&long))),
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", long_len),
            &long_len,
            |bench, _| bench.iter(|| black_box(short.gallop_intersect(&long))),
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive", long_len),
            &long_len,
            |bench, _| bench.iter(|| black_box(short.intersect_adaptive(&long))),
        );
    }
    group.finish();
}

fn bench_short_circuit(c: &mut Criterion) {
    // A1: mostly-disjoint operands at a demanding minsup — the bounded
    // kernel bails out almost immediately.
    let a = TidList::of(&(0..50_000).collect::<Vec<_>>());
    let b = TidList::of(&(49_000..99_000).collect::<Vec<_>>());
    let minsup = 900; // true overlap is 1000 — close call, late bail-out
    let mut group = c.benchmark_group("intersect/short_circuit");
    group.bench_function("bounded_pass", |bench| {
        bench.iter(|| black_box(a.intersect_bounded(&b, minsup)))
    });
    group.bench_function("bounded_fail", |bench| {
        bench.iter(|| black_box(a.intersect_bounded(&b, 2_000)))
    });
    group.bench_function("unbounded", |bench| {
        bench.iter(|| black_box(a.intersect(&b)))
    });
    group.finish();
}

fn bench_diffsets(c: &mut Criterion) {
    use tidlist::diffset::DiffSet;
    // Dense prefix: diffsets are tiny while tid-lists stay long.
    let prefix = TidList::of(&(0..100_000).collect::<Vec<_>>());
    let x = TidList::of(&(0..100_000).filter(|v| v % 100 != 0).collect::<Vec<_>>());
    let y = TidList::of(&(0..100_000).filter(|v| v % 97 != 0).collect::<Vec<_>>());
    let dx = DiffSet::from_tidlists(&prefix, &x);
    let dy = DiffSet::from_tidlists(&prefix, &y);
    let mut group = c.benchmark_group("intersect/diffset_vs_tidlist_dense");
    group.bench_function("tidlist_join", |bench| {
        bench.iter(|| black_box(x.intersect(&y)))
    });
    group.bench_function("diffset_join", |bench| {
        bench.iter(|| black_box(dx.join(&dy)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_balanced, bench_skewed, bench_short_circuit, bench_diffsets
}
criterion_main!(benches);
