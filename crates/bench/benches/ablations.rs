//! Wall-clock ablations of the design choices DESIGN.md calls out:
//! short-circuit on/off (A1), pruning on/off (A3), prefix-class vs
//! maximal-clique clustering, tid-list vs diffset kernels, and full
//! mining vs MaxEclat. Simulated-time versions of the same ablations
//! live in the `ablations` *binary*; these are real seconds on the build
//! machine.

use criterion::{criterion_group, criterion_main, Criterion};
use dbstore::HorizontalDb;
use eclat::{EclatConfig, Representation};
use mining_types::{MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};
use std::hint::black_box;

fn db() -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::t10_i6(20_000)).generate_all())
}

fn bench_ablations(c: &mut Criterion) {
    let db = db();
    let minsup = MinSupport::from_percent(0.2);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("eclat_short_circuit_on", |b| {
        b.iter(|| {
            let mut m = OpMeter::new();
            black_box(
                eclat::sequential::mine_with(&db, minsup, &EclatConfig::default(), &mut m).len(),
            )
        })
    });
    group.bench_function("eclat_short_circuit_off", |b| {
        let cfg = EclatConfig {
            short_circuit: false,
            ..Default::default()
        };
        b.iter(|| {
            let mut m = OpMeter::new();
            black_box(eclat::sequential::mine_with(&db, minsup, &cfg, &mut m).len())
        })
    });
    group.bench_function("eclat_prune_on", |b| {
        let cfg = EclatConfig {
            prune: true,
            ..Default::default()
        };
        b.iter(|| {
            let mut m = OpMeter::new();
            black_box(eclat::sequential::mine_with(&db, minsup, &cfg, &mut m).len())
        })
    });
    for (label, repr) in [
        ("repr_tidlist", Representation::TidList),
        ("repr_diffset", Representation::Diffset),
        (
            "repr_autoswitch_d2",
            Representation::AutoSwitch { depth: 2 },
        ),
    ] {
        let cfg = EclatConfig::with_representation(repr);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut m = OpMeter::new();
                black_box(eclat::sequential::mine_with(&db, minsup, &cfg, &mut m).len())
            })
        });
    }
    group.bench_function("repr_tidlist_gallop", |b| {
        let cfg = EclatConfig {
            gallop: true,
            ..Default::default()
        };
        b.iter(|| {
            let mut m = OpMeter::new();
            black_box(eclat::sequential::mine_with(&db, minsup, &cfg, &mut m).len())
        })
    });
    group.bench_function("clique_clustering", |b| {
        b.iter(|| {
            let mut m = OpMeter::new();
            black_box(eclat::clique::mine_with(&db, minsup, &EclatConfig::default(), &mut m).len())
        })
    });
    for (label, repr) in [
        ("maxeclat_tidlist", Representation::TidList),
        ("maxeclat_diffset", Representation::Diffset),
        (
            "maxeclat_autoswitch_d2",
            Representation::AutoSwitch { depth: 2 },
        ),
    ] {
        let cfg = EclatConfig::with_representation(repr);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut m = OpMeter::new();
                black_box(eclat::maximal::mine_maximal_with(&db, minsup, &cfg, &mut m).len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // plots are pure overhead on this machine, and the default 3s+5s
    // warmup/measurement windows are oversized for deterministic kernels
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ablations
}
criterion_main!(benches);
