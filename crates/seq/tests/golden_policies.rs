//! Golden policy-equivalence tests on Quest-generated sequence data:
//! the three execution policies must produce *byte-identical* results —
//! same patterns, same supports, same canonical rendering, same merged
//! op counts — and the fixed-seed run is pinned so a silent change in
//! either the generator or the kernel fails loudly.

use eclat::pipeline::{FixedThreads, Rayon, Serial};
use eclat_seq::{mine_stats, FrequentSequences, SeqConfig, SeqDb};
use mining_types::{MinSupport, OpMeter};
use questgen::{SeqGenerator, SeqParams};

fn quest_db(d: usize, seed: u64) -> SeqDb {
    SeqDb::from_events(SeqGenerator::new(SeqParams::tiny(d, seed)).generate_all_raw())
}

/// Canonical byte rendering of a result set: one `pattern\tsupport`
/// line per frequent sequence, in the map's (ordered) iteration order.
fn render(fs: &FrequentSequences) -> String {
    let mut out = String::new();
    for (p, s) in fs {
        out.push_str(&format!("{p}\t{s}\n"));
    }
    out
}

#[test]
fn all_policies_render_byte_identically() {
    for seed in [1u64, 7] {
        let db = quest_db(120, seed);
        let minsup = MinSupport::from_percent(20.0);
        let cfg = SeqConfig::default();
        let mut m_serial = OpMeter::new();
        let (fs_serial, stats_serial) =
            mine_stats(&db, minsup, &cfg, &mut m_serial, &Serial, "sequential");
        let golden = render(&fs_serial);
        assert!(!golden.is_empty(), "seed {seed} mined nothing");

        let mut m_rayon = OpMeter::new();
        let (fs_rayon, stats_rayon) = mine_stats(&db, minsup, &cfg, &mut m_rayon, &Rayon, "rayon");
        assert_eq!(render(&fs_rayon), golden, "seed {seed}: rayon bytes");
        assert_eq!(m_rayon, m_serial, "seed {seed}: rayon meter");
        assert_eq!(stats_rayon.total_ops, stats_serial.total_ops);
        assert_eq!(stats_rayon.classes, stats_serial.classes);

        for procs in [1usize, 2, 3, 7] {
            let mut m = OpMeter::new();
            let (fs, stats) = mine_stats(
                &db,
                minsup,
                &cfg,
                &mut m,
                &FixedThreads::new(procs),
                "threads",
            );
            assert_eq!(render(&fs), golden, "seed {seed}: threads P={procs} bytes");
            assert_eq!(m, m_serial, "seed {seed}: threads P={procs} meter");
            assert_eq!(stats.total_ops, stats_serial.total_ops);
            assert_eq!(stats.classes, stats_serial.classes);
        }
    }
}

#[test]
fn fixed_seed_run_is_pinned() {
    // C6.T3.S3.I2, D=200, seed 0xD0 at 20 % support. These constants
    // pin both the sequence generator and the kernel: if either changes
    // behaviour, this fails and the change must be deliberate.
    let db = quest_db(200, 0xD0);
    let (fs, stats) = mine_stats(
        &db,
        MinSupport::from_percent(20.0),
        &SeqConfig::default(),
        &mut OpMeter::new(),
        &Serial,
        "sequential",
    );
    let golden_len = fs.len();
    let golden_deepest = fs.keys().map(|p| p.len_items()).max().unwrap_or(0);
    let golden_l1 = stats
        .levels
        .iter()
        .find(|l| l.size == 1)
        .map(|l| l.frequent)
        .unwrap_or(0);
    insta_like_pin(golden_len, golden_deepest, golden_l1 as usize);

    // And the cap agrees with post-filtering the full result.
    let cfg = SeqConfig {
        maxlen: Some(2),
        ..SeqConfig::default()
    };
    let capped = eclat_seq::mine_with(
        &db,
        MinSupport::from_percent(20.0),
        &cfg,
        &mut OpMeter::new(),
        &Serial,
    );
    let expect: FrequentSequences = fs
        .iter()
        .filter(|(p, _)| p.len_items() <= 2)
        .map(|(p, &s)| (p.clone(), s))
        .collect();
    assert_eq!(capped, expect);
}

/// The pinned constants for `fixed_seed_run_is_pinned`, kept in one
/// place so a deliberate regeneration touches exactly one spot.
fn insta_like_pin(len: usize, deepest: usize, l1: usize) {
    assert_eq!(len, 1085, "frequent-sequence count moved");
    assert_eq!(deepest, 9, "deepest pattern moved");
    assert_eq!(l1, 28, "frequent-1 count moved");
}
