//! SPADE ≡ reference on random databases: the vertical kernel is pinned
//! against the GSP-style horizontal miner, which shares no code with it
//! (no PairSet, no joins, no classes) — agreement is evidence, not
//! tautology. The same random databases also pin policy equivalence and
//! support monotonicity.

use eclat::pipeline::{FixedThreads, Rayon, Serial};
use eclat_seq::{mine, mine_with, reference, SeqConfig, SeqDb};
use mining_types::{MinSupport, OpMeter};
use proptest::prelude::*;

/// Random sequence database: up to 14 sequences of up to 8 events over
/// a 10-item alphabet. Events are normalized (sorted, deduped) and
/// empty events dropped, matching what a real loader produces.
fn raw_db() -> impl Strategy<Value = Vec<Vec<(u32, Vec<u32>)>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u32..10, 1..4), 0..8),
        0..14,
    )
    .prop_map(|seqs| {
        seqs.into_iter()
            .map(|events| {
                events
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, mut items)| {
                        items.sort_unstable();
                        items.dedup();
                        (!items.is_empty()).then_some((i as u32 + 1, items))
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spade_matches_the_reference_miner(raw in raw_db(), pct in 5.0f64..80.0) {
        let db = SeqDb::from_events(raw);
        let minsup = MinSupport::from_percent(pct);
        let spade = mine(&db, minsup, &Serial);
        let oracle = reference::mine_reference(&db, minsup, None);
        prop_assert_eq!(spade, oracle);
    }

    #[test]
    fn maxlen_cap_matches_the_reference_miner(raw in raw_db(), maxlen in 1u32..5) {
        let db = SeqDb::from_events(raw);
        let minsup = MinSupport::from_percent(20.0);
        let cfg = SeqConfig { maxlen: Some(maxlen), ..SeqConfig::default() };
        let spade = mine_with(&db, minsup, &cfg, &mut OpMeter::new(), &Serial);
        let oracle = reference::mine_reference(&db, minsup, Some(maxlen));
        prop_assert_eq!(spade, oracle);
    }

    #[test]
    fn policies_agree_on_random_databases(raw in raw_db(), pct in 5.0f64..60.0, procs in 1usize..5) {
        let db = SeqDb::from_events(raw);
        let minsup = MinSupport::from_percent(pct);
        let cfg = SeqConfig::default();
        let mut m_serial = OpMeter::new();
        let expect = mine_with(&db, minsup, &cfg, &mut m_serial, &Serial);
        let mut m_rayon = OpMeter::new();
        prop_assert_eq!(&mine_with(&db, minsup, &cfg, &mut m_rayon, &Rayon), &expect);
        prop_assert_eq!(m_rayon, m_serial);
        let mut m_threads = OpMeter::new();
        prop_assert_eq!(
            &mine_with(&db, minsup, &cfg, &mut m_threads, &FixedThreads::new(procs)),
            &expect
        );
        prop_assert_eq!(m_threads, m_serial);
    }

    #[test]
    fn support_is_monotone_in_minsup(raw in raw_db()) {
        let db = SeqDb::from_events(raw);
        let lo = mine(&db, MinSupport::from_percent(10.0), &Serial);
        let hi = mine(&db, MinSupport::from_percent(50.0), &Serial);
        prop_assert!(hi.len() <= lo.len());
        for (p, &s) in &hi {
            prop_assert_eq!(lo.get(p), Some(&s), "{} changed support", p);
        }
    }

    #[test]
    fn every_reported_support_is_a_true_containment_count(raw in raw_db()) {
        let db = SeqDb::from_events(raw);
        let fs = mine(&db, MinSupport::from_percent(25.0), &Serial);
        for (p, &s) in &fs {
            prop_assert_eq!(reference::support_of(&db, p), s, "{}", p);
        }
    }
}
