//! [`SeqDb`] — the horizontal sequence database.
//!
//! One entry per sequence (customer): a time-ordered list of events,
//! each an `(eid, itemset)` pair. Sids are implicit (the index), eids
//! are the input timestamps — strictly increasing within a sequence
//! after normalization, with same-eid events merged. This is the layout
//! the initialization scans (frequent-1/2 counting) read and the
//! vertical transform turns into per-atom [`PairSet`]s.
//!
//! [`PairSet`]: crate::PairSet

use mining_types::ItemId;

/// A sequence database: `sequences[sid]` is that customer's history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeqDb {
    sequences: Vec<Vec<(u32, Vec<ItemId>)>>,
    num_items: u32,
}

impl SeqDb {
    /// Build from raw timestamped events, normalizing each sequence:
    /// events sorted by eid, same-eid events merged, items within an
    /// event sorted and deduplicated, empty events dropped.
    pub fn from_events(raw: Vec<Vec<(u32, Vec<u32>)>>) -> SeqDb {
        let mut num_items = 0u32;
        let sequences = raw
            .into_iter()
            .map(|mut seq| {
                seq.sort_by_key(|&(eid, _)| eid);
                let mut events: Vec<(u32, Vec<ItemId>)> = Vec::with_capacity(seq.len());
                for (eid, items) in seq {
                    if items.is_empty() {
                        continue;
                    }
                    for &i in &items {
                        num_items = num_items.max(i + 1);
                    }
                    let items: Vec<ItemId> = items.into_iter().map(ItemId).collect();
                    match events.last_mut() {
                        Some((last_eid, last_items)) if *last_eid == eid => {
                            last_items.extend(items);
                        }
                        _ => events.push((eid, items)),
                    }
                    let (_, last_items) = events.last_mut().expect("just pushed or merged");
                    last_items.sort_unstable();
                    last_items.dedup();
                }
                events
            })
            .collect();
        SeqDb {
            sequences,
            num_items,
        }
    }

    /// Test/docs helper: one itemset slice per event, eids assigned
    /// `1, 2, …` in order.
    pub fn of(seqs: &[&[&[u32]]]) -> SeqDb {
        SeqDb::from_events(
            seqs.iter()
                .map(|seq| {
                    seq.iter()
                        .enumerate()
                        .map(|(i, items)| (i as u32 + 1, items.to_vec()))
                        .collect()
                })
                .collect(),
        )
    }

    /// Number of sequences (the support denominator).
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Total events over all sequences.
    pub fn num_events(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Total item occurrences over all events.
    pub fn num_item_occurrences(&self) -> usize {
        self.sequences
            .iter()
            .flat_map(|s| s.iter())
            .map(|(_, items)| items.len())
            .sum()
    }

    /// Upper bound on item ids (`max item + 1` over the input).
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The sequences, sid-ascending; each a normalized event list.
    pub fn sequences(&self) -> &[Vec<(u32, Vec<ItemId>)>] {
        &self.sequences
    }

    /// Raw `u32` view for the binfmt container.
    pub fn to_raw(&self) -> Vec<Vec<(u32, Vec<u32>)>> {
        self.sequences
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|(eid, items)| (*eid, items.iter().map(|i| i.0).collect()))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_assigns_ascending_eids() {
        let db = SeqDb::of(&[&[&[1, 2], &[3]], &[&[2]]]);
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.num_events(), 3);
        assert_eq!(db.num_item_occurrences(), 4);
        assert_eq!(db.num_items(), 4);
        assert_eq!(
            db.sequences()[0],
            vec![(1, vec![ItemId(1), ItemId(2)]), (2, vec![ItemId(3)]),]
        );
    }

    #[test]
    fn from_events_normalizes() {
        // Out-of-order eids, a duplicate eid (merged), duplicate items
        // (deduped), and an empty event (dropped).
        let db = SeqDb::from_events(vec![vec![
            (5, vec![9]),
            (2, vec![4, 4, 1]),
            (5, vec![3]),
            (7, vec![]),
        ]]);
        assert_eq!(
            db.sequences()[0],
            vec![
                (2, vec![ItemId(1), ItemId(4)]),
                (5, vec![ItemId(3), ItemId(9)]),
            ]
        );
        assert_eq!(db.num_items(), 10);
    }

    #[test]
    fn raw_round_trip() {
        let db = SeqDb::of(&[&[&[1, 2], &[3]], &[], &[&[0]]]);
        assert_eq!(SeqDb::from_events(db.to_raw()), db);
    }
}
