//! The SPADE pipeline: the itemset miner's three phases, re-targeted at
//! sequences.
//!
//! 1. **Initialization** — two horizontal scans: frequent-1 counting
//!    (distinct sids per item) and frequent-2 counting. The 2-sequence
//!    scan counts both forms at once per sid: items `x < y` co-occurring
//!    in one event (I-candidates, a triangle) and ordered item pairs
//!    `x → y` with an `x`-event strictly before a `y`-event
//!    (S-candidates, a full matrix — the diagonal finds repeats).
//! 2. **Transformation** — one ordered scan building each frequent
//!    item's `(sid, eid)` occurrence list ([`PairSet`]).
//! 3. **Asynchronous phase** — one task per prefix class `⟨{x}⟩`: the
//!    task joins the item lists into the class's 2-sequence members
//!    (equality/temporal [`PairSet`] joins) and runs the recursive
//!    kernel. Tasks are independent, so they run under any
//!    [`TaskExecutor`] policy; results and meters merge in class order,
//!    making Serial/Rayon/FixedThreads byte-identical.

use crate::db::SeqDb;
use crate::kernel::{class_weight, recurse, AtomKind, FrequentSequences, SeqConfig, SeqMember};
use crate::pairset::PairSet;
use crate::pattern::SeqPattern;
use eclat::executor::TaskExecutor;
use eclat::pipeline::{PHASE_ASYNC, PHASE_INIT, PHASE_TRANSFORM};
use mining_types::stats::{ClassStats, KernelStats, MiningStats, PhaseStats};
use mining_types::{ItemId, MinSupport, OpMeter};
use std::time::Instant;
use tidlist::TidSet;

/// What the initialization scans found: the frequent items (ascending)
/// with their supports, and per-class partner lists for the frequent
/// 2-sequences.
struct InitCounts {
    /// Frequent items, ascending, with distinct-sid supports.
    items: Vec<(ItemId, u32)>,
    /// Per frequent item `x` (same index as `items`): frequent I-pair
    /// partners `y > x` and frequent S-pair partners (any `y`), both as
    /// indices into `items`.
    classes: Vec<ClassSpec>,
    /// 2-sequence cells examined (the level-2 candidate count).
    l2_candidates: u64,
    /// Frequent 2-sequences found.
    l2_frequent: u64,
}

/// One prefix class `⟨{x}⟩`, by indices into the frequent-item list.
struct ClassSpec {
    item: usize,
    i_partners: Vec<usize>,
    s_partners: Vec<usize>,
}

impl ClassSpec {
    fn members(&self) -> usize {
        self.i_partners.len() + self.s_partners.len()
    }
}

/// Frequent-1 scan: distinct sids per item, one stamp pass per sequence.
fn count_items(db: &SeqDb, threshold: u32, meter: &mut OpMeter) -> Vec<(ItemId, u32)> {
    let n = db.num_items() as usize;
    let mut counts = vec![0u32; n];
    let mut stamp = vec![0u32; n];
    for (sid, seq) in db.sequences().iter().enumerate() {
        let mark = sid as u32 + 1;
        for (_, items) in seq {
            for &item in items {
                let slot = item.0 as usize;
                if stamp[slot] != mark {
                    stamp[slot] = mark;
                    counts[slot] += 1;
                    meter.pair_incr += 1;
                }
            }
        }
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= threshold)
        .map(|(i, c)| (ItemId(i as u32), c))
        .collect()
}

/// Frequent-2 scan over the frequent items, counting each sid once per
/// cell. `x → y` holds in a sid iff `x`'s earliest event precedes `y`'s
/// latest; `{x, y}` holds iff some single event contains both.
fn count_l2(
    db: &SeqDb,
    items: &[(ItemId, u32)],
    threshold: u32,
    meter: &mut OpMeter,
) -> InitCounts {
    let k = items.len();
    let mut imap = vec![usize::MAX; db.num_items() as usize];
    for (fi, &(item, _)) in items.iter().enumerate() {
        imap[item.0 as usize] = fi;
    }
    let mut i_counts = vec![0u32; k * k]; // x < y at x*k + y
    let mut i_stamp = vec![0u32; k * k];
    let mut s_counts = vec![0u32; k * k]; // x → y at x*k + y
    let mut min_eid = vec![0u32; k];
    let mut max_eid = vec![0u32; k];
    let mut item_stamp = vec![0u32; k];
    let mut present: Vec<usize> = Vec::new();
    let mut event_fidx: Vec<usize> = Vec::new();
    for (sid, seq) in db.sequences().iter().enumerate() {
        let mark = sid as u32 + 1;
        present.clear();
        for &(eid, ref evt_items) in seq {
            event_fidx.clear();
            for &item in evt_items {
                let fi = imap[item.0 as usize];
                if fi == usize::MAX {
                    continue;
                }
                event_fidx.push(fi);
                if item_stamp[fi] != mark {
                    item_stamp[fi] = mark;
                    present.push(fi);
                    min_eid[fi] = eid;
                }
                max_eid[fi] = eid;
            }
            // I-candidates: frequent item pairs sharing this event
            // (event items ascend, and imap preserves order).
            for a in 0..event_fidx.len() {
                for b in a + 1..event_fidx.len() {
                    let cell = event_fidx[a] * k + event_fidx[b];
                    if i_stamp[cell] != mark {
                        i_stamp[cell] = mark;
                        i_counts[cell] += 1;
                        meter.pair_incr += 1;
                    }
                }
            }
        }
        // S-candidates: ordered pairs over the items present in this sid.
        for &x in &present {
            for &y in &present {
                if min_eid[x] < max_eid[y] {
                    s_counts[x * k + y] += 1;
                    meter.pair_incr += 1;
                }
            }
        }
    }
    let mut classes = Vec::with_capacity(k);
    let mut l2_frequent = 0u64;
    for x in 0..k {
        let i_partners: Vec<usize> = (x + 1..k)
            .filter(|&y| i_counts[x * k + y] >= threshold)
            .collect();
        let s_partners: Vec<usize> = (0..k)
            .filter(|&y| s_counts[x * k + y] >= threshold)
            .collect();
        l2_frequent += (i_partners.len() + s_partners.len()) as u64;
        if !i_partners.is_empty() || !s_partners.is_empty() {
            classes.push(ClassSpec {
                item: x,
                i_partners,
                s_partners,
            });
        }
    }
    InitCounts {
        items: items.to_vec(),
        classes,
        l2_candidates: mining_types::itemset::choose2(k) + (k * k) as u64,
        l2_frequent,
    }
}

/// Transformation scan: every frequent item's `(sid, eid)` occurrence
/// list, sorted by construction (sids then eids ascend).
fn build_item_lists(db: &SeqDb, items: &[(ItemId, u32)], meter: &mut OpMeter) -> Vec<PairSet> {
    let mut imap = vec![usize::MAX; db.num_items() as usize];
    for (fi, &(item, _)) in items.iter().enumerate() {
        imap[item.0 as usize] = fi;
    }
    let mut lists: Vec<Vec<(u32, u32)>> = vec![Vec::new(); items.len()];
    for (sid, seq) in db.sequences().iter().enumerate() {
        for &(eid, ref evt_items) in seq {
            for &item in evt_items {
                let fi = imap[item.0 as usize];
                if fi != usize::MAX {
                    lists[fi].push((sid as u32, eid));
                    meter.record += 1;
                }
            }
        }
    }
    lists.into_iter().map(PairSet::from_sorted).collect()
}

/// One class task: join the item lists into the class's 2-sequence
/// members, record them, and run the recursive kernel. Returns the
/// class-local results so the caller can merge in class order.
fn mine_class(
    spec: &ClassSpec,
    items: &[(ItemId, u32)],
    lists: &[PairSet],
    threshold: u32,
    cfg: &SeqConfig,
    meter: &mut OpMeter,
) -> (FrequentSequences, ClassStats) {
    let x = items[spec.item].0;
    let prefix = SeqPattern::single(x);
    let lx = &lists[spec.item];
    let mut out = FrequentSequences::new();
    let mut members: Vec<SeqMember> = Vec::with_capacity(spec.members());
    for &yi in &spec.i_partners {
        let y = items[yi].0;
        members.push(SeqMember {
            kind: AtomKind::Itemset,
            item: y,
            pattern: prefix.i_extend(y),
            pairs: lx.join_metered(&lists[yi], meter),
        });
    }
    for &yi in &spec.s_partners {
        let y = items[yi].0;
        members.push(SeqMember {
            kind: AtomKind::Sequence,
            item: y,
            pattern: prefix.s_extend(y),
            pairs: lx.temporal_join_metered(&lists[yi], meter),
        });
    }
    for m in &members {
        debug_assert!(m.pairs.support() >= threshold, "counted frequent");
        out.insert(m.pattern.clone(), m.pairs.support());
        meter.record += 1;
    }
    let mut stats = ClassStats {
        prefix: vec![x.0],
        members: members.len() as u64,
        kernel: KernelStats::new(),
    };
    // maxlen is enforced inside the recursion (the members here are
    // 2-sequences; `mine_stats` never builds classes when maxlen < 2).
    recurse(&members, threshold, cfg, meter, &mut out, &mut stats.kernel);
    (out, stats)
}

/// Mine `db` at `minsup` under `policy` with default settings.
pub fn mine(db: &SeqDb, minsup: MinSupport, policy: &impl TaskExecutor) -> FrequentSequences {
    mine_with(
        db,
        minsup,
        &SeqConfig::default(),
        &mut OpMeter::new(),
        policy,
    )
}

/// [`mine`] with explicit config and operation metering.
pub fn mine_with(
    db: &SeqDb,
    minsup: MinSupport,
    cfg: &SeqConfig,
    meter: &mut OpMeter,
    policy: &impl TaskExecutor,
) -> FrequentSequences {
    mine_stats(db, minsup, cfg, meter, policy, "sequential").0
}

/// [`mine_with`] that also produces the structured [`MiningStats`]
/// report (`algorithm = "spade"`): per-phase wall-clock/op deltas,
/// per-level candidate/frequent counts, per-class kernel work.
pub fn mine_stats(
    db: &SeqDb,
    minsup: MinSupport,
    cfg: &SeqConfig,
    meter: &mut OpMeter,
    policy: &impl TaskExecutor,
    variant: &str,
) -> (FrequentSequences, MiningStats) {
    let threshold = minsup.count_threshold(db.num_sequences()).max(1);
    let mut stats = MiningStats::new("spade", variant, "pairlist");
    stats.transactions = db.num_sequences() as u64;
    stats.threshold = u64::from(threshold);
    let mut out = FrequentSequences::new();
    let start_ops = *meter;

    // --- Phase 1 (initialization): frequent-1/2 counting.
    let span_init = eclat_obs::trace::span(PHASE_INIT);
    let t_init = Instant::now();
    let items = count_items(db, threshold, meter);
    stats.record_level(1, u64::from(db.num_items()), items.len() as u64);
    let init = count_l2(db, &items, threshold, meter);
    stats.record_level(2, init.l2_candidates, init.l2_frequent);
    for &(item, support) in &init.items {
        out.insert(SeqPattern::single(item), support);
        meter.record += 1;
    }
    stats.phases.push(PhaseStats {
        label: PHASE_INIT.to_string(),
        secs: t_init.elapsed().as_secs_f64(),
        ops: meter.since(&start_ops),
    });
    drop(span_init);
    let under_maxlen = cfg.maxlen.is_none_or(|k| k >= 2);
    if init.classes.is_empty() || !under_maxlen {
        stats.num_frequent = out.len() as u64;
        stats.total_ops = meter.since(&start_ops);
        return (out, stats);
    }

    // --- Phase 2 (transformation): vertical occurrence lists.
    let span_transform = eclat_obs::trace::span(PHASE_TRANSFORM);
    let t_transform = Instant::now();
    let ops_before_transform = *meter;
    let lists = build_item_lists(db, &init.items, meter);
    stats.phases.push(PhaseStats {
        label: PHASE_TRANSFORM.to_string(),
        secs: t_transform.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_transform),
    });
    drop(span_transform);

    // --- Phase 3 (asynchronous): one independent task per class.
    let span_async = eclat_obs::trace::span(PHASE_ASYNC);
    let t_async = Instant::now();
    let ops_before_async = *meter;
    let weights: Vec<u64> = init
        .classes
        .iter()
        .map(|c| class_weight(c.members()))
        .collect();
    let items_ref = &init.items;
    let lists_ref = &lists;
    let results: Vec<(FrequentSequences, OpMeter, ClassStats)> =
        policy.run_tasks(init.classes, &weights, cfg.heuristic, |i, spec| {
            let _span = eclat_obs::trace::span_arg("class", i as u64);
            let mut m = OpMeter::new();
            let (local, cs) = mine_class(&spec, items_ref, lists_ref, threshold, cfg, &mut m);
            (local, m, cs)
        });
    let mut class_stats = Vec::with_capacity(results.len());
    for (local, m, cs) in results {
        out.extend(local);
        meter.merge(&m);
        class_stats.push(cs);
    }
    stats.phases.push(PhaseStats {
        label: PHASE_ASYNC.to_string(),
        secs: t_async.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_async),
    });
    drop(span_async);
    for cs in class_stats {
        stats.add_class(cs);
    }
    stats.sort_classes();
    stats.num_frequent = out.len() as u64;
    stats.total_ops = meter.since(&start_ops);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclat::pipeline::{FixedThreads, Rayon, Serial};

    /// The module-doc example database: three customers.
    fn sample() -> SeqDb {
        SeqDb::of(&[
            &[&[1, 2], &[3], &[1]],
            &[&[1], &[2], &[3]],
            &[&[2], &[1, 3]],
        ])
    }

    #[test]
    fn mines_expected_patterns_on_sample() {
        let db = sample();
        let fs = mine(&db, MinSupport::from_fraction(0.99), &Serial);
        // All three customers: items 1, 2, 3 and the sequences they
        // share. 2 → 3 holds in all sids; {1,2} only in sid 0.
        assert_eq!(fs[&SeqPattern::single(ItemId(1))], 3);
        assert_eq!(fs[&SeqPattern::of(&[&[2], &[3]])], 3);
        assert!(!fs.contains_key(&SeqPattern::of(&[&[1, 2]])));
        for (p, &s) in &fs {
            assert!(s >= 3, "{p} has support {s}");
        }
    }

    #[test]
    fn repeats_are_found() {
        let db = SeqDb::of(&[&[&[5], &[5]], &[&[5], &[0], &[5]]]);
        let fs = mine(&db, MinSupport::from_fraction(0.99), &Serial);
        assert_eq!(fs[&SeqPattern::of(&[&[5], &[5]])], 2);
    }

    #[test]
    fn policies_agree_with_serial() {
        let db = sample();
        let minsup = MinSupport::from_percent(50.0);
        let cfg = SeqConfig::default();
        let mut m_serial = OpMeter::new();
        let expect = mine_with(&db, minsup, &cfg, &mut m_serial, &Serial);
        let mut m_rayon = OpMeter::new();
        assert_eq!(mine_with(&db, minsup, &cfg, &mut m_rayon, &Rayon), expect);
        assert_eq!(m_serial, m_rayon, "merged meters match serial");
        for p in [1, 2, 3] {
            let mut m = OpMeter::new();
            assert_eq!(
                mine_with(&db, minsup, &cfg, &mut m, &FixedThreads::new(p)),
                expect,
                "P={p}"
            );
            assert_eq!(m, m_serial, "P={p}");
        }
    }

    #[test]
    fn maxlen_caps_pattern_length() {
        let db = sample();
        let minsup = MinSupport::from_percent(50.0);
        let full = mine(&db, minsup, &Serial);
        for maxlen in 1..=4u32 {
            let cfg = SeqConfig {
                maxlen: Some(maxlen),
                ..SeqConfig::default()
            };
            let capped = mine_with(&db, minsup, &cfg, &mut OpMeter::new(), &Serial);
            let expect: FrequentSequences = full
                .iter()
                .filter(|(p, _)| p.len_items() <= maxlen as usize)
                .map(|(p, &s)| (p.clone(), s))
                .collect();
            assert_eq!(capped, expect, "maxlen={maxlen}");
        }
    }

    #[test]
    fn stats_report_phases_levels_classes() {
        let db = sample();
        let mut meter = OpMeter::new();
        let (fs, stats) = mine_stats(
            &db,
            MinSupport::from_percent(50.0),
            &SeqConfig::default(),
            &mut meter,
            &Serial,
            "sequential",
        );
        assert_eq!(stats.algorithm, "spade");
        assert_eq!(stats.representation, "pairlist");
        assert_eq!(stats.transactions, 3);
        assert_eq!(stats.num_frequent, fs.len() as u64);
        assert_eq!(stats.total_ops, meter);
        let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec![PHASE_INIT, PHASE_TRANSFORM, PHASE_ASYNC]);
        assert!(stats.phases[2].ops.tid_cmp > 0, "joins in async");
        // Levels 1 and 2 from the scans; classes sorted by prefix item.
        assert!(stats.levels.iter().any(|l| l.size == 1));
        assert!(stats.levels.iter().any(|l| l.size == 2));
        assert!(!stats.classes.is_empty());
        for w in stats.classes.windows(2) {
            assert!(w[0].prefix < w[1].prefix);
        }
        // num_frequent decomposes into L1 + L2 + kernel output.
        let l1 = stats.levels.iter().find(|l| l.size == 1).unwrap().frequent;
        let l2 = stats.levels.iter().find(|l| l.size == 2).unwrap().frequent;
        let kernel: u64 = stats.classes.iter().map(|c| c.kernel.frequent).sum();
        assert_eq!(l1 + l2 + kernel, stats.num_frequent);
    }

    #[test]
    fn stats_identical_across_policies() {
        let db = sample();
        let minsup = MinSupport::from_percent(50.0);
        let cfg = SeqConfig::default();
        let (fs_s, seq) = mine_stats(&db, minsup, &cfg, &mut OpMeter::new(), &Serial, "x");
        for (fs_p, par) in [
            mine_stats(&db, minsup, &cfg, &mut OpMeter::new(), &Rayon, "x"),
            mine_stats(
                &db,
                minsup,
                &cfg,
                &mut OpMeter::new(),
                &FixedThreads::new(3),
                "x",
            ),
        ] {
            assert_eq!(fs_s, fs_p);
            assert_eq!(seq.total_ops, par.total_ops);
            assert_eq!(seq.levels, par.levels);
            assert_eq!(seq.classes, par.classes);
            for (a, b) in seq.phases.iter().zip(&par.phases) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.ops, b.ops);
            }
        }
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = SeqDb::of(&[]);
        assert!(mine(&db, MinSupport::from_percent(10.0), &Serial).is_empty());
        let (fs, stats) = mine_stats(
            &db,
            MinSupport::from_percent(10.0),
            &SeqConfig::default(),
            &mut OpMeter::new(),
            &Rayon,
            "parallel",
        );
        assert!(fs.is_empty());
        assert_eq!(stats.num_frequent, 0);
        assert_eq!(stats.phases.len(), 1, "only init runs");
    }

    #[test]
    fn maxlen_one_skips_transform_entirely() {
        let db = sample();
        let cfg = SeqConfig {
            maxlen: Some(1),
            ..SeqConfig::default()
        };
        let (fs, stats) = mine_stats(
            &db,
            MinSupport::from_percent(50.0),
            &cfg,
            &mut OpMeter::new(),
            &Serial,
            "sequential",
        );
        assert!(fs.keys().all(|p| p.len_items() == 1));
        assert_eq!(stats.phases.len(), 1);
    }
}
