//! The recursive SPADE kernel: prefix equivalence classes of sequence
//! atoms and the two extension joins.
//!
//! A class groups all frequent `k`-sequences sharing a `(k-1)`-prefix;
//! each member is an *atom* — the one item the member adds, tagged with
//! **how** it was added:
//!
//! * [`AtomKind::Itemset`] — the item joined the prefix's last element
//!   (`⟨… {X}⟩ → ⟨… {X,y}⟩`);
//! * [`AtomKind::Sequence`] — the item opened a new element
//!   (`⟨…⟩ → ⟨… → {y}⟩`).
//!
//! Extending member `m` with sibling `s` (SPADE's candidate rules,
//! applied once per child so no deduplication pass is needed):
//!
//! | `m`       | `s`                         | join                          | child atom |
//! |-----------|-----------------------------|-------------------------------|------------|
//! | `Itemset` | `Itemset`, `s.item > m.item`| equality (I-extension)        | `Itemset`  |
//! | `Itemset` | `Sequence` (any)            | temporal `m` → `s`            | `Sequence` |
//! | `Sequence`| `Sequence`, `s.item > m.item`| equality (I-extension)       | `Itemset`  |
//! | `Sequence`| `Sequence` (any, incl. `s = m`)| temporal `m` → `s`         | `Sequence` |
//!
//! `Itemset` siblings never extend a `Sequence` member — that candidate
//! belongs to (and is generated in) the sibling's own class. The
//! self-join row is what finds repeats (`a → a`); it terminates because
//! every temporal self-join strictly drops each sid's earliest
//! occurrence.
//!
//! Both joins run through [`PairSet`]'s metered/bounded surface, so the
//! §5.3 short-circuit and `tid_cmp` accounting work exactly as in the
//! itemset kernel.

use crate::pairset::PairSet;
use crate::pattern::SeqPattern;
use eclat::ScheduleHeuristic;
use mining_types::stats::KernelStats;
use mining_types::{ItemId, OpMeter};
use std::collections::BTreeMap;
use tidlist::TidSet;

/// Frequent sequences with their supports, in canonical pattern order.
pub type FrequentSequences = BTreeMap<SeqPattern, u32>;

/// How a member's atom extends its class prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomKind {
    /// The atom joined the prefix's last element (same eid).
    Itemset,
    /// The atom opened a new element (strictly later eid).
    Sequence,
}

/// One member of a sequence equivalence class.
#[derive(Clone, Debug)]
pub struct SeqMember {
    /// How `item` extends the class prefix.
    pub kind: AtomKind,
    /// The added item.
    pub item: ItemId,
    /// The member's full pattern (prefix + atom).
    pub pattern: SeqPattern,
    /// Occurrences of the pattern's last element.
    pub pairs: PairSet,
}

/// Knobs for the recursive kernel.
#[derive(Clone, Debug)]
pub struct SeqConfig {
    /// Cap on pattern length in items (`--maxlen`); `None` = unbounded.
    pub maxlen: Option<u32>,
    /// Bail out of joins that provably cannot reach minsup (§5.3).
    pub short_circuit: bool,
    /// Class-scheduling heuristic for the `FixedThreads` policy.
    pub heuristic: ScheduleHeuristic,
}

impl Default for SeqConfig {
    fn default() -> SeqConfig {
        SeqConfig {
            maxlen: None,
            short_circuit: true,
            heuristic: ScheduleHeuristic::GreedyPairs,
        }
    }
}

/// True when members of this length may still be extended.
fn may_extend(cfg: &SeqConfig, parent_len: usize) -> bool {
    cfg.maxlen.is_none_or(|k| (parent_len as u32) < k)
}

/// Generate member `i`'s child class: every frequent extension of
/// `members[i]` by its eligible siblings, in canonical member order
/// (Itemset atoms first, then Sequence atoms; items ascending within
/// each kind — `members` itself is already in that order).
fn extend_member(
    members: &[SeqMember],
    i: usize,
    threshold: u32,
    cfg: &SeqConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSequences,
    stats: &mut KernelStats,
) -> Vec<SeqMember> {
    let m = &members[i];
    let child_len = (m.pattern.len_items() + 1) as u64;
    let mut next: Vec<SeqMember> = Vec::new();

    let join = |sib: &SeqMember,
                temporal: bool,
                meter: &mut OpMeter,
                stats: &mut KernelStats|
     -> Option<PairSet> {
        meter.cand_gen += 1;
        stats.record_candidate(child_len);
        let joined = match (cfg.short_circuit, temporal) {
            (true, true) => m
                .pairs
                .temporal_join_bounded_metered(&sib.pairs, threshold, meter),
            (true, false) => m.pairs.join_bounded_metered(&sib.pairs, threshold, meter),
            (false, temporal) => {
                let full = if temporal {
                    m.pairs.temporal_join_metered(&sib.pairs, meter)
                } else {
                    m.pairs.join_metered(&sib.pairs, meter)
                };
                (full.support() >= threshold).then_some(full)
            }
        };
        if joined.is_none() {
            stats.record_infrequent(cfg.short_circuit);
        } else {
            stats.record_frequent(child_len);
            meter.record += 1;
        }
        joined
    };

    // I-extensions: same-kind siblings with a larger item.
    for sib in members {
        if sib.kind != m.kind || sib.item <= m.item {
            continue;
        }
        if let Some(pairs) = join(sib, false, meter, stats) {
            let pattern = m.pattern.i_extend(sib.item);
            out.insert(pattern.clone(), pairs.support());
            next.push(SeqMember {
                kind: AtomKind::Itemset,
                item: sib.item,
                pattern,
                pairs,
            });
        }
    }
    // S-extensions: every Sequence sibling (self included when `m` is a
    // Sequence atom).
    for sib in members {
        if sib.kind != AtomKind::Sequence {
            continue;
        }
        if let Some(pairs) = join(sib, true, meter, stats) {
            let pattern = m.pattern.s_extend(sib.item);
            out.insert(pattern.clone(), pairs.support());
            next.push(SeqMember {
                kind: AtomKind::Sequence,
                item: sib.item,
                pattern,
                pairs,
            });
        }
    }
    next
}

/// Depth-first recursion over one class's subtree. `members` must be in
/// canonical order and all of the same item-length; their patterns are
/// assumed already recorded by the caller.
pub(crate) fn recurse(
    members: &[SeqMember],
    threshold: u32,
    cfg: &SeqConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSequences,
    stats: &mut KernelStats,
) {
    let Some(first) = members.first() else {
        return;
    };
    if !may_extend(cfg, first.pattern.len_items()) {
        return;
    }
    let parent_bytes: u64 = members.iter().map(|m| m.pairs.byte_size()).sum();
    for i in 0..members.len() {
        let child = extend_member(members, i, threshold, cfg, meter, out, stats);
        let child_bytes: u64 = child.iter().map(|m| m.pairs.byte_size()).sum();
        stats.observe_level_bytes(parent_bytes + child_bytes);
        recurse(&child, threshold, cfg, meter, out, stats);
    }
}

/// Largest-weight class weights for the §5.2.1 greedy schedule: the
/// same `C(s, 2)` pair-count estimate the itemset pipeline uses, on the
/// class's member count (every member pair is a potential join).
pub fn class_weight(members: usize) -> u64 {
    mining_types::itemset::choose2(members).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(kind: AtomKind, item: u32, pairs: &[(u32, u32)]) -> SeqMember {
        let pattern = match kind {
            AtomKind::Itemset => SeqPattern::of(&[&[0, item]]),
            AtomKind::Sequence => SeqPattern::of(&[&[0], &[item]]),
        };
        SeqMember {
            kind,
            item: ItemId(item),
            pattern,
            pairs: PairSet::new(pairs.to_vec()),
        }
    }

    #[test]
    fn self_join_terminates_and_finds_repeats() {
        // ⟨{0}→{1}⟩ occurring at events 2,3,4 of sid 0: the self-join
        // chain yields 0→1→1 and 0→1→1→1 and then runs dry.
        let members = vec![member(AtomKind::Sequence, 1, &[(0, 2), (0, 3), (0, 4)])];
        let mut out = FrequentSequences::new();
        let cfg = SeqConfig::default();
        recurse(
            &members,
            1,
            &cfg,
            &mut OpMeter::new(),
            &mut out,
            &mut KernelStats::new(),
        );
        let patterns: Vec<String> = out.keys().map(|p| p.to_string()).collect();
        assert_eq!(patterns, vec!["0 -> 1 -> 1", "0 -> 1 -> 1 -> 1"]);
        assert_eq!(out[&SeqPattern::of(&[&[0], &[1], &[1]])], 1);
    }

    #[test]
    fn maxlen_stops_extension() {
        let members = vec![member(AtomKind::Sequence, 1, &[(0, 2), (0, 3), (0, 4)])];
        let mut out = FrequentSequences::new();
        let cfg = SeqConfig {
            maxlen: Some(2),
            ..SeqConfig::default()
        };
        recurse(
            &members,
            1,
            &cfg,
            &mut OpMeter::new(),
            &mut out,
            &mut KernelStats::new(),
        );
        assert!(out.is_empty(), "members are already at maxlen");
    }

    #[test]
    fn itemset_siblings_do_not_extend_sequence_members() {
        // Class of ⟨{0}⟩ with one Itemset atom {0,1} and one Sequence
        // atom 0→2 that never co-occur: only the Itemset member may pick
        // up the Sequence sibling.
        let members = vec![
            member(AtomKind::Itemset, 1, &[(0, 1), (1, 1)]),
            member(AtomKind::Sequence, 2, &[(0, 5), (1, 4)]),
        ];
        let mut out = FrequentSequences::new();
        recurse(
            &members,
            2,
            &SeqConfig::default(),
            &mut OpMeter::new(),
            &mut out,
            &mut KernelStats::new(),
        );
        // ⟨{0,1} → {2}⟩ holds in both sids; nothing else is frequent.
        assert_eq!(out.len(), 1);
        assert_eq!(out[&SeqPattern::of(&[&[0, 1], &[2]])], 2);
    }

    #[test]
    fn short_circuit_on_and_off_agree() {
        let members = vec![
            member(AtomKind::Itemset, 1, &[(0, 1), (1, 1), (2, 3)]),
            member(AtomKind::Sequence, 1, &[(0, 5), (2, 4), (3, 1)]),
            member(AtomKind::Sequence, 2, &[(0, 2), (1, 2), (2, 9)]),
        ];
        let mine = |sc: bool| {
            let mut out = FrequentSequences::new();
            let cfg = SeqConfig {
                short_circuit: sc,
                ..SeqConfig::default()
            };
            let mut stats = KernelStats::new();
            recurse(&members, 2, &cfg, &mut OpMeter::new(), &mut out, &mut stats);
            (out, stats.joins)
        };
        let (with, cand_with) = mine(true);
        let (without, cand_without) = mine(false);
        assert_eq!(with, without);
        assert_eq!(cand_with, cand_without, "same candidates either way");
    }

    #[test]
    fn class_weight_is_pairish() {
        assert_eq!(class_weight(0), 1);
        assert_eq!(class_weight(1), 1);
        assert_eq!(class_weight(4), 6);
    }
}
