//! The `eclat seq` stats artifact: database shape + result profile
//! around the embedded `algorithm = "spade"` [`MiningStats`] report.
//!
//! Serialized through [`mining_types::json`] like every other stats
//! surface in the workspace; the key set is pinned by
//! `tests/stats_schema.rs` at the repo root, and `stats_diff` keys the
//! `by_len` rows on their `"len"` field.

use crate::db::SeqDb;
use crate::kernel::{FrequentSequences, SeqConfig};
use mining_types::json::{Arr, Obj};
use mining_types::stats::MiningStats;

/// Bump when the JSON shape of [`SeqStats`] changes.
pub const SEQ_SCHEMA_VERSION: u64 = 1;

/// One `eclat seq` run: input profile, result profile by pattern
/// length, and the embedded mining report.
#[derive(Clone, Debug)]
pub struct SeqStats {
    /// Sequences in the input (the support denominator).
    pub sequences: u64,
    /// Events over all sequences.
    pub events: u64,
    /// Item occurrences over all events.
    pub item_occurrences: u64,
    /// Alphabet bound (`max item + 1`).
    pub distinct_items: u64,
    /// `--maxlen` cap; `0` = unbounded.
    pub maxlen: u64,
    /// Frequent sequences found.
    pub frequent: u64,
    /// `(pattern length in items, frequent patterns of that length)`,
    /// length-ascending.
    pub by_len: Vec<(u64, u64)>,
    /// The `algorithm = "spade"` pipeline report.
    pub mining: MiningStats,
}

impl SeqStats {
    /// Assemble the artifact from a finished run.
    pub fn from_run(
        db: &SeqDb,
        cfg: &SeqConfig,
        result: &FrequentSequences,
        mining: MiningStats,
    ) -> SeqStats {
        let mut by_len: Vec<(u64, u64)> = Vec::new();
        for p in result.keys() {
            let len = p.len_items() as u64;
            match by_len.iter_mut().find(|(l, _)| *l == len) {
                Some((_, n)) => *n += 1,
                None => by_len.push((len, 1)),
            }
        }
        by_len.sort_unstable();
        SeqStats {
            sequences: db.num_sequences() as u64,
            events: db.num_events() as u64,
            item_occurrences: db.num_item_occurrences() as u64,
            distinct_items: u64::from(db.num_items()),
            maxlen: u64::from(cfg.maxlen.unwrap_or(0)),
            frequent: result.len() as u64,
            by_len,
            mining,
        }
    }

    /// JSON document for the run (always includes per-class rows).
    pub fn to_json(&self) -> String {
        let mut lens = Arr::new();
        for &(len, patterns) in &self.by_len {
            lens.raw(
                &Obj::new()
                    .u64("len", len)
                    .u64("patterns", patterns)
                    .finish(),
            );
        }
        Obj::new()
            .u64("schema_version", SEQ_SCHEMA_VERSION)
            .str("algorithm", "spade")
            .u64("sequences", self.sequences)
            .u64("events", self.events)
            .u64("item_occurrences", self.item_occurrences)
            .u64("distinct_items", self.distinct_items)
            .u64("maxlen", self.maxlen)
            .u64("frequent", self.frequent)
            .raw("by_len", &lens.finish())
            .raw("mining", &self.mining.to_json(true))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::mine_stats;
    use eclat::pipeline::Serial;
    use mining_types::{MinSupport, OpMeter};

    #[test]
    fn artifact_reflects_the_run() {
        let db = SeqDb::of(&[&[&[1, 2], &[3]], &[&[1], &[2, 3]], &[&[2], &[3]]]);
        let cfg = SeqConfig::default();
        let (fs, mining) = mine_stats(
            &db,
            MinSupport::from_percent(60.0),
            &cfg,
            &mut OpMeter::new(),
            &Serial,
            "sequential",
        );
        let stats = SeqStats::from_run(&db, &cfg, &fs, mining);
        assert_eq!(stats.sequences, 3);
        assert_eq!(stats.events, 6);
        assert_eq!(stats.maxlen, 0, "unbounded");
        assert_eq!(stats.frequent, fs.len() as u64);
        let total: u64 = stats.by_len.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, stats.frequent);
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema_version\":1,\"algorithm\":\"spade\","));
        assert!(json.contains("\"by_len\":[{\"len\":1,"));
        assert!(json.contains("\"mining\":{\"schema_version\":"));
        assert!(json.contains("\"algorithm\":\"spade\",\"variant\":\"sequential\""));
    }
}
