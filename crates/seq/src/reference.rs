//! Naive GSP-style reference miner — the oracle the SPADE kernel is
//! pinned against.
//!
//! Level-wise: every frequent `k`-sequence is extended by every frequent
//! item (one new element, or joining the last element when the item is
//! larger than the current last), and each candidate's support is
//! counted by a full horizontal containment scan. Hopelessly slow, and
//! deliberately so — it shares no code with the vertical kernel, so
//! agreement is evidence, not tautology.

use crate::db::SeqDb;
use crate::kernel::FrequentSequences;
use crate::pattern::SeqPattern;
use mining_types::{ItemId, MinSupport};

/// True when `pattern` is contained in the (normalized) event list of
/// one sequence: elements match whole events, in order, at strictly
/// increasing times. Greedy earliest-match is complete here — if any
/// embedding exists, the one taking each element's earliest feasible
/// event also exists.
pub fn contains(seq: &[(u32, Vec<ItemId>)], pattern: &SeqPattern) -> bool {
    let mut next = 0usize;
    for elem in pattern.elems() {
        let found = seq[next..]
            .iter()
            .position(|(_, items)| elem.iter().all(|i| items.binary_search(i).is_ok()));
        match found {
            Some(offset) => next += offset + 1,
            None => return false,
        }
    }
    true
}

/// Support of `pattern`: the number of sequences containing it.
pub fn support_of(db: &SeqDb, pattern: &SeqPattern) -> u32 {
    db.sequences()
        .iter()
        .filter(|seq| contains(seq, pattern))
        .count() as u32
}

/// Mine all frequent sequences by level-wise scan. `maxlen` caps the
/// pattern length in items, like the kernel's `SeqConfig::maxlen`.
pub fn mine_reference(db: &SeqDb, minsup: MinSupport, maxlen: Option<u32>) -> FrequentSequences {
    let threshold = minsup.count_threshold(db.num_sequences()).max(1);
    let mut out = FrequentSequences::new();
    if maxlen == Some(0) {
        return out;
    }
    let mut items: Vec<ItemId> = Vec::new();
    let mut level: Vec<SeqPattern> = Vec::new();
    for i in 0..db.num_items() {
        let p = SeqPattern::single(ItemId(i));
        let s = support_of(db, &p);
        if s >= threshold {
            items.push(ItemId(i));
            level.push(p.clone());
            out.insert(p, s);
        }
    }
    while !level.is_empty() {
        let mut next: Vec<SeqPattern> = Vec::new();
        for p in &level {
            if maxlen.is_some_and(|k| p.len_items() as u32 >= k) {
                continue;
            }
            for &a in &items {
                for cand in [
                    (a > p.last_item()).then(|| p.i_extend(a)),
                    Some(p.s_extend(a)),
                ]
                .into_iter()
                .flatten()
                {
                    let s = support_of(db, &cand);
                    if s >= threshold {
                        out.insert(cand.clone(), s);
                        next.push(cand);
                    }
                }
            }
        }
        level = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_respects_order_and_elements() {
        let db = SeqDb::of(&[&[&[1, 2], &[3], &[1]]]);
        let seq = &db.sequences()[0];
        assert!(contains(seq, &SeqPattern::of(&[&[1, 2]])));
        assert!(contains(seq, &SeqPattern::of(&[&[2], &[3]])));
        assert!(contains(seq, &SeqPattern::of(&[&[1], &[1]])));
        assert!(contains(seq, &SeqPattern::of(&[&[1, 2], &[3], &[1]])));
        assert!(!contains(seq, &SeqPattern::of(&[&[3], &[2]])), "order");
        assert!(!contains(seq, &SeqPattern::of(&[&[2, 3]])), "same event");
        assert!(!contains(seq, &SeqPattern::of(&[&[1], &[1], &[1]])));
    }

    #[test]
    fn reference_finds_the_obvious() {
        let db = SeqDb::of(&[
            &[&[1, 2], &[3], &[1]],
            &[&[1], &[2], &[3]],
            &[&[2], &[1, 3]],
        ]);
        let fs = mine_reference(&db, MinSupport::from_fraction(0.99), None);
        assert_eq!(fs[&SeqPattern::of(&[&[2], &[3]])], 3);
        assert_eq!(fs[&SeqPattern::single(ItemId(1))], 3);
        assert!(!fs.contains_key(&SeqPattern::of(&[&[1, 2]])));
    }

    #[test]
    fn maxlen_zero_is_empty() {
        let db = SeqDb::of(&[&[&[1]]]);
        assert!(mine_reference(&db, MinSupport::from_percent(1.0), Some(0)).is_empty());
    }
}
