//! [`PairSet`] — the sequence-vertical occurrence list.
//!
//! Where Eclat keeps one tid per transaction, SPADE keeps one
//! `(sid, eid)` pair per *occurrence*: sequence id plus the event id
//! (timestamp) at which the pattern's **last element** occurs. Support
//! is the number of distinct sids, so a pattern occurring five times in
//! one customer's history still counts once.
//!
//! The two SPADE join forms both map onto this layout:
//!
//! * **I-extension** (itemset join, same element) is an exact
//!   `(sid, eid)` intersection — structurally the same sorted merge as
//!   a tid-list intersection, so [`PairSet`] implements the workspace's
//!   [`TidSet`] surface with it: `join`/`join_bounded`/metered variants,
//!   §5.3 minsup bail included.
//! * **S-extension** (temporal join) is the inherent
//!   [`temporal_join`](PairSet::temporal_join) family: keep the pairs of
//!   the extending atom that occur *strictly after* the earliest
//!   occurrence of the prefix atom in the same sequence.
//!
//! Both bounded forms bail as soon as
//! `matched_sids + min(remaining_a, remaining_b) < minsup` — remaining
//! pairs bound remaining distinct sids from above, so the bail is
//! conservative and the `None` ⇔ infrequent contract holds exactly.

use mining_types::OpMeter;
use tidlist::TidSet;

/// A sorted, deduplicated list of `(sid, eid)` occurrences with its
/// distinct-sid support cached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PairSet {
    pairs: Vec<(u32, u32)>,
    support: u32,
}

/// Distinct sids in a sorted pair list.
fn count_sids(pairs: &[(u32, u32)]) -> u32 {
    let mut n = 0u32;
    let mut last = None;
    for &(sid, _) in pairs {
        if last != Some(sid) {
            n += 1;
            last = Some(sid);
        }
    }
    n
}

impl PairSet {
    /// Build from occurrences in any order (sorted + deduplicated here).
    pub fn new(mut pairs: Vec<(u32, u32)>) -> PairSet {
        pairs.sort_unstable();
        pairs.dedup();
        PairSet::from_sorted(pairs)
    }

    /// Build from pairs already sorted by `(sid, eid)` with no
    /// duplicates — the shape every scan and join in this crate emits.
    pub fn from_sorted(pairs: Vec<(u32, u32)>) -> PairSet {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let support = count_sids(&pairs);
        PairSet { pairs, support }
    }

    /// The occurrences, ascending by `(sid, eid)`.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of occurrences (≥ support).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no occurrences.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// I-extension join core: exact `(sid, eid)` intersection, bailing
    /// per the module rule. `minsup == 0` disables the bound (plain
    /// join); comparisons land in `meter.tid_cmp`.
    fn eq_join_impl(&self, other: &PairSet, minsup: u32, meter: &mut OpMeter) -> Option<PairSet> {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut support = 0u32;
        let mut last_sid = None;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let headroom = support as usize + (a.len() - i).min(b.len() - j);
            if headroom < minsup as usize {
                return None;
            }
            meter.tid_cmp += 1;
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let (sid, eid) = a[i];
                    if last_sid != Some(sid) {
                        support += 1;
                        last_sid = Some(sid);
                    }
                    out.push((sid, eid));
                    i += 1;
                    j += 1;
                }
            }
        }
        (support >= minsup).then_some(PairSet {
            pairs: out,
            support,
        })
    }

    /// S-extension join core: for every sid shared with `other`, keep
    /// `other`'s occurrences strictly after this set's earliest
    /// occurrence in that sid. Bail/metering as in
    /// [`eq_join_impl`](Self::eq_join_impl).
    fn temporal_join_impl(
        &self,
        other: &PairSet,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<PairSet> {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut support = 0u32;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let headroom = support as usize + (a.len() - i).min(b.len() - j);
            if headroom < minsup as usize {
                return None;
            }
            meter.tid_cmp += 1;
            let (sa, sb) = (a[i].0, b[j].0);
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // a is sorted, so a[i] is the earliest occurrence of
                    // the prefix atom in this sid.
                    let min_eid = a[i].1;
                    let mut matched = false;
                    while j < b.len() && b[j].0 == sb {
                        meter.tid_cmp += 1;
                        if b[j].1 > min_eid {
                            out.push(b[j]);
                            matched = true;
                        }
                        j += 1;
                    }
                    if matched {
                        support += 1;
                    }
                    while i < a.len() && a[i].0 == sa {
                        i += 1;
                    }
                }
            }
        }
        (support >= minsup).then_some(PairSet {
            pairs: out,
            support,
        })
    }

    /// Temporal (S-extension) join: occurrences of `other` strictly
    /// after this set's earliest same-sid occurrence.
    pub fn temporal_join(&self, other: &PairSet) -> PairSet {
        self.temporal_join_impl(other, 0, &mut OpMeter::new())
            .expect("minsup 0 never bails")
    }

    /// [`temporal_join`](Self::temporal_join), abandoning with `None`
    /// exactly when the result's support is below `minsup` (§5.3).
    pub fn temporal_join_bounded(&self, other: &PairSet, minsup: u32) -> Option<PairSet> {
        self.temporal_join_bounded_metered(other, minsup, &mut OpMeter::new())
    }

    /// [`temporal_join`](Self::temporal_join) with comparison metering.
    pub fn temporal_join_metered(&self, other: &PairSet, meter: &mut OpMeter) -> PairSet {
        self.temporal_join_impl(other, 0, meter)
            .expect("minsup 0 never bails")
    }

    /// [`temporal_join_bounded`](Self::temporal_join_bounded) with
    /// comparison metering.
    pub fn temporal_join_bounded_metered(
        &self,
        other: &PairSet,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<PairSet> {
        self.temporal_join_impl(other, minsup, meter)
    }
}

impl TidSet for PairSet {
    fn support(&self) -> u32 {
        self.support
    }

    fn byte_size(&self) -> u64 {
        (self.pairs.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }

    fn join(&self, other: &Self) -> Self {
        self.eq_join_impl(other, 0, &mut OpMeter::new())
            .expect("minsup 0 never bails")
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        self.eq_join_impl(other, minsup, &mut OpMeter::new())
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        self.eq_join_impl(other, 0, meter)
            .expect("minsup 0 never bails")
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        self.eq_join_impl(other, minsup, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(pairs: &[(u32, u32)]) -> PairSet {
        PairSet::new(pairs.to_vec())
    }

    #[test]
    fn support_counts_distinct_sids() {
        let s = ps(&[(0, 1), (0, 4), (2, 2), (5, 1)]);
        assert_eq!(s.support(), 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.byte_size(), 32);
        assert_eq!(ps(&[]).support(), 0);
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = ps(&[(2, 2), (0, 4), (0, 1), (0, 4)]);
        assert_eq!(s.pairs(), &[(0, 1), (0, 4), (2, 2)]);
    }

    #[test]
    fn equality_join_intersects_exact_pairs() {
        let a = ps(&[(0, 1), (0, 3), (1, 2), (3, 5)]);
        let b = ps(&[(0, 3), (1, 2), (1, 4), (3, 6)]);
        let j = a.join(&b);
        assert_eq!(j.pairs(), &[(0, 3), (1, 2)]);
        assert_eq!(j.support(), 2);
    }

    #[test]
    fn temporal_join_keeps_strictly_later_events() {
        let a = ps(&[(0, 2), (1, 5), (2, 1)]);
        let b = ps(&[(0, 1), (0, 2), (0, 4), (1, 5), (2, 3), (3, 1)]);
        let j = a.temporal_join(&b);
        // sid 0: earliest a-event is 2, so only eid 4 qualifies;
        // sid 1: b's only event (5) is not strictly after 5;
        // sid 2: 3 > 1 qualifies; sid 3 is absent from a.
        assert_eq!(j.pairs(), &[(0, 4), (2, 3)]);
        assert_eq!(j.support(), 2);
    }

    #[test]
    fn temporal_join_is_directional() {
        let a = ps(&[(0, 1)]);
        let b = ps(&[(0, 2)]);
        assert_eq!(a.temporal_join(&b).pairs(), &[(0, 2)]);
        assert!(b.temporal_join(&a).is_empty());
    }

    #[test]
    fn bounded_joins_are_none_iff_infrequent() {
        let a = ps(&[(0, 1), (1, 1), (2, 9), (3, 1)]);
        let b = ps(&[(0, 1), (1, 3), (2, 2), (4, 1)]);
        for minsup in 0..=5u32 {
            let eq = a.join(&b);
            assert_eq!(
                a.join_bounded(&b, minsup).is_some(),
                eq.support() >= minsup,
                "eq minsup={minsup}"
            );
            if let Some(j) = a.join_bounded(&b, minsup) {
                assert_eq!(j, eq);
            }
            let tj = a.temporal_join(&b);
            assert_eq!(
                a.temporal_join_bounded(&b, minsup).is_some(),
                tj.support() >= minsup,
                "temporal minsup={minsup}"
            );
            if let Some(j) = a.temporal_join_bounded(&b, minsup) {
                assert_eq!(j, tj);
            }
        }
    }

    #[test]
    fn metered_joins_count_comparisons() {
        let a = ps(&[(0, 1), (1, 1), (2, 9)]);
        let b = ps(&[(0, 1), (1, 3), (2, 2)]);
        let mut m = OpMeter::new();
        let j = a.join_metered(&b, &mut m);
        assert_eq!(j, a.join(&b));
        assert!(m.tid_cmp > 0);
        let mut m2 = OpMeter::new();
        let t = a.temporal_join_metered(&b, &mut m2);
        assert_eq!(t, a.temporal_join(&b));
        assert!(m2.tid_cmp > 0);
    }

    #[test]
    fn temporal_self_join_finds_repeats() {
        // sid 0 sees the item at events 1 and 4 → one repeat occurrence.
        let a = ps(&[(0, 1), (0, 4), (1, 2)]);
        let j = a.temporal_join(&a);
        assert_eq!(j.pairs(), &[(0, 4)]);
        assert_eq!(j.support(), 1);
    }
}
