//! **eclat-seq** — SPADE-style sequential pattern mining on the
//! workspace's vertical-mining machinery.
//!
//! Zaki's SPADE is Eclat's sibling: replace transactions with
//! *sequences* of timestamped events, tid-lists with `(sid, eid)`
//! occurrence lists, and the single intersection with two join forms —
//! itemset extension (same event) and temporal extension (later event).
//! Everything else carries over: prefix equivalence classes partition
//! the search space into independent subtrees (§4.1 of the source
//! paper), a greedy weighted schedule spreads them over processors
//! (§5.2.1), and joins short-circuit against minsup (§5.3).
//!
//! The crate leans on that sharing deliberately:
//!
//! * [`PairSet`] implements the `tidlist::TidSet` trait — the I-extension
//!   *is* a `TidSet::join`, bounded/metered surface included — and adds
//!   the inherent temporal-join family for S-extensions;
//! * the three execution policies (`Serial`, `Rayon`, `FixedThreads`)
//!   are reused through `eclat::executor::TaskExecutor`, so parallel
//!   runs are byte-identical to serial ones, op counts included;
//! * [`mine_stats`] emits the same [`mining_types::stats::MiningStats`]
//!   shape as the itemset pipeline, with `algorithm = "spade"`.
//!
//! ```
//! use eclat_seq::{mine, SeqDb, SeqPattern};
//! use mining_types::MinSupport;
//!
//! // Three customers; every one buys 2 and then 3.
//! let db = SeqDb::of(&[
//!     &[&[1, 2], &[3], &[1]],
//!     &[&[1], &[2], &[3]],
//!     &[&[2], &[3]],
//! ]);
//! let fs = mine(&db, MinSupport::from_fraction(0.99), &eclat::pipeline::Serial);
//! assert_eq!(fs[&SeqPattern::of(&[&[2], &[3]])], 3);
//! ```
//!
//! The oracle for all of this is [`reference::mine_reference`], a naive
//! GSP-style level-wise miner sharing no code with the kernel; the
//! proptest suite pins SPADE ≡ reference on random databases.

pub mod db;
pub mod kernel;
pub mod mine;
pub mod pairset;
pub mod pattern;
pub mod reference;
pub mod stats;

pub use db::SeqDb;
pub use kernel::{AtomKind, FrequentSequences, SeqConfig, SeqMember};
pub use mine::{mine, mine_stats, mine_with};
pub use pairset::PairSet;
pub use pattern::SeqPattern;
pub use stats::{SeqStats, SEQ_SCHEMA_VERSION};
