//! Sequential patterns: ordered lists of itemsets ("elements").
//!
//! A [`SeqPattern`] like `⟨{A,B} → {C}⟩` means "an event containing both
//! A and B, later followed by an event containing C". Items within an
//! element are sorted ascending; elements are ordered in time. The
//! derived `Ord` (lexicographic over elements, then over items) gives
//! every result surface — snapshots, CLI listings, golden tests — one
//! canonical pattern order.

use mining_types::ItemId;
use std::fmt;

/// One sequential pattern: a non-empty sequence of non-empty itemsets.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqPattern {
    elems: Vec<Vec<ItemId>>,
}

impl SeqPattern {
    /// The 1-sequence `⟨{item}⟩`.
    pub fn single(item: ItemId) -> SeqPattern {
        SeqPattern {
            elems: vec![vec![item]],
        }
    }

    /// A pattern from explicit elements. Items inside each element are
    /// sorted and deduplicated; empty elements are rejected.
    pub fn of(elems: &[&[u32]]) -> SeqPattern {
        assert!(!elems.is_empty(), "a pattern needs at least one element");
        let elems = elems
            .iter()
            .map(|e| {
                assert!(!e.is_empty(), "pattern elements must be non-empty");
                let mut v: Vec<ItemId> = e.iter().map(|&i| ItemId(i)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        SeqPattern { elems }
    }

    /// The elements, in temporal order.
    pub fn elems(&self) -> &[Vec<ItemId>] {
        &self.elems
    }

    /// Number of elements (the pattern's length in events).
    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }

    /// Total number of items over all elements — the `k` of a
    /// `k`-sequence, and what `--maxlen` bounds.
    pub fn len_items(&self) -> usize {
        self.elems.iter().map(Vec::len).sum()
    }

    /// The last item of the last element (every extension appends here).
    pub fn last_item(&self) -> ItemId {
        *self
            .elems
            .last()
            .and_then(|e| e.last())
            .expect("patterns are non-empty")
    }

    /// Itemset extension: `⟨… {X}⟩ → ⟨… {X ∪ item}⟩`. The kernel only
    /// ever I-extends with `item` greater than the current last item, so
    /// the element stays sorted by construction.
    pub fn i_extend(&self, item: ItemId) -> SeqPattern {
        debug_assert!(item > self.last_item(), "I-extension items ascend");
        let mut p = self.clone();
        p.elems
            .last_mut()
            .expect("patterns are non-empty")
            .push(item);
        p
    }

    /// Temporal extension: `⟨…⟩ → ⟨… → {item}⟩`.
    pub fn s_extend(&self, item: ItemId) -> SeqPattern {
        let mut p = self.clone();
        p.elems.push(vec![item]);
        p
    }

    /// Plain `u32` view of the elements (the binfmt container's shape).
    pub fn to_raw(&self) -> Vec<Vec<u32>> {
        self.elems
            .iter()
            .map(|e| e.iter().map(|i| i.0).collect())
            .collect()
    }

    /// Rebuild from the binfmt container's raw shape.
    pub fn from_raw(raw: &[Vec<u32>]) -> SeqPattern {
        let borrowed: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        SeqPattern::of(&borrowed)
    }
}

impl fmt::Display for SeqPattern {
    /// `3 7 -> 2` — items space-joined within an element, elements
    /// joined by `->`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (ei, elem) in self.elems.iter().enumerate() {
            if ei > 0 {
                write!(f, " -> ")?;
            }
            for (ii, item) in elem.iter().enumerate() {
                if ii > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", item.0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_extension() {
        let p = SeqPattern::single(ItemId(3));
        assert_eq!(p.len_items(), 1);
        assert_eq!(p.num_elems(), 1);
        let pi = p.i_extend(ItemId(7));
        assert_eq!(pi, SeqPattern::of(&[&[3, 7]]));
        assert_eq!(pi.len_items(), 2);
        assert_eq!(pi.num_elems(), 1);
        let ps = pi.s_extend(ItemId(2));
        assert_eq!(ps, SeqPattern::of(&[&[3, 7], &[2]]));
        assert_eq!(ps.len_items(), 3);
        assert_eq!(ps.num_elems(), 2);
        assert_eq!(ps.last_item(), ItemId(2));
    }

    #[test]
    fn display_uses_arrow_between_elements() {
        assert_eq!(SeqPattern::of(&[&[3, 7], &[2]]).to_string(), "3 7 -> 2");
        assert_eq!(SeqPattern::single(ItemId(5)).to_string(), "5");
    }

    #[test]
    fn of_sorts_and_dedups_items() {
        assert_eq!(
            SeqPattern::of(&[&[7, 3, 7]]),
            SeqPattern::of(&[&[3, 7]]),
            "items normalize"
        );
    }

    #[test]
    fn ordering_is_lexicographic_over_elements() {
        let a = SeqPattern::of(&[&[1]]);
        let b = SeqPattern::of(&[&[1, 2]]);
        let c = SeqPattern::of(&[&[1], &[1]]);
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        // ⟨{1}⟩ < ⟨{1}→{1}⟩ < ⟨{1,2}⟩: prefix before longer element.
        assert_eq!(v, vec![a, c, b]);
    }

    #[test]
    fn raw_round_trip() {
        let p = SeqPattern::of(&[&[3, 7], &[2], &[2, 9]]);
        assert_eq!(SeqPattern::from_raw(&p.to_raw()), p);
    }
}
