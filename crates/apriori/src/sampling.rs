//! Sample-then-verify mining — the paper's references \[15\] (Toivonen,
//! VLDB 1996) and \[17\] (Zaki et al., RIDE 1997), discussed in §1.2:
//! *"Another way to minimize the I/O overhead is to work with only a
//! small random sample of the database."*
//!
//! Pipeline:
//!
//! 1. Draw a deterministic (seeded) simple random sample of the
//!    transactions.
//! 2. Mine the sample at a **lowered** support threshold — Toivonen's
//!    device for shrinking the false-negative probability.
//! 3. One exact counting pass over the full database verifies the
//!    sample's candidates; supports in the result are exact.
//!
//! The output can only miss itemsets that were infrequent in the sample
//! even at the lowered threshold (false negatives); it never reports a
//! wrong support. [`SamplingReport`] quantifies the verification.

use crate::hash_tree::HashTree;
use crate::miner::{mine_with, AprioriConfig};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for sampling-based mining.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Fraction of transactions to sample, in `(0, 1]`.
    pub sample_fraction: f64,
    /// Multiplier `< 1` applied to the support threshold on the sample
    /// (Toivonen lowers the threshold to suppress false negatives).
    pub support_lowering: f64,
    /// RNG seed for the sample.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_fraction: 0.1,
            support_lowering: 0.8,
            seed: 1,
        }
    }
}

/// What happened during a sampling run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplingReport {
    /// Transactions sampled.
    pub sample_size: usize,
    /// Candidates the sample proposed (including the negative border).
    pub candidates: usize,
    /// Candidates that verified as globally frequent.
    pub confirmed: usize,
    /// Toivonen's completeness certificate: `false` means no *negative
    /// border* itemset verified as frequent, so the result is provably
    /// the complete answer; `true` means some border itemset is frequent
    /// and itemsets beyond the border may have been missed.
    pub possibly_incomplete: bool,
}

/// The negative border of a downward-closed itemset collection: the
/// minimal itemsets *not* in the collection (every proper subset is in
/// it). Computed via the Apriori join over the collection's per-level
/// members plus the missing single items.
pub fn negative_border(frequent: &FrequentSet, num_items: u32) -> Vec<Itemset> {
    let mut border: Vec<Itemset> = Vec::new();
    // level 1: items that are not frequent singletons
    for i in 0..num_items {
        let single = Itemset::single(ItemId(i));
        if !frequent.contains(&single) {
            border.push(single);
        }
    }
    // level k ≥ 2: candidates generated from the collection's L_{k-1}
    // that are not members themselves
    let max = frequent.max_size();
    for k in 2..=max + 1 {
        let lk1: Vec<Itemset> = frequent
            .of_size(k - 1)
            .into_iter()
            .map(|c| c.itemset)
            .collect();
        if lk1.is_empty() {
            break;
        }
        let mut meter = OpMeter::new();
        for cand in crate::gen::generate_candidates(&lk1, &mut meter) {
            if !frequent.contains(&cand) {
                border.push(cand);
            }
        }
    }
    border
}

/// Mine via sampling + one verification scan. Returns the (possibly
/// incomplete, never unsound) frequent set and the report.
///
/// # Panics
/// Panics if the configuration fractions are out of range.
pub fn mine_with_sampling(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &SamplingConfig,
) -> (FrequentSet, SamplingReport) {
    assert!(
        cfg.sample_fraction > 0.0 && cfg.sample_fraction <= 1.0,
        "sample fraction must be in (0,1]"
    );
    assert!(
        cfg.support_lowering > 0.0 && cfg.support_lowering <= 1.0,
        "support lowering must be in (0,1]"
    );
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);

    // ---- 1. Sample.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sample: Vec<Vec<ItemId>> = db
        .iter()
        .filter(|_| rng.random::<f64>() < cfg.sample_fraction)
        .map(|(_, t)| t.to_vec())
        .collect();
    let sample_size = sample.len();
    if sample_size == 0 {
        return (
            FrequentSet::new(),
            SamplingReport {
                sample_size: 0,
                candidates: 0,
                confirmed: 0,
                possibly_incomplete: true,
            },
        );
    }
    let sample_db = HorizontalDb::from_transactions(sample).with_num_items(db.num_items());

    // ---- 2. Mine the sample at the lowered threshold, and add the
    // negative border (Toivonen's completeness certificate: if no border
    // itemset verifies frequent, nothing beyond it can be frequent
    // either, so the answer is provably complete).
    let lowered = MinSupport::from_fraction((minsup.fraction() * cfg.support_lowering).min(1.0));
    let mut meter = OpMeter::new();
    let sample_frequent = mine_with(&sample_db, lowered, &AprioriConfig::default(), &mut meter);
    let border: Vec<Itemset> = negative_border(&sample_frequent, db.num_items());
    let border_set: mining_types::FxHashSet<Itemset> = border.iter().cloned().collect();
    let candidates: Vec<Itemset> = sample_frequent
        .iter()
        .map(|(is, _)| is.clone())
        .chain(border)
        .collect();

    // ---- 3. Verify with one exact pass over the full database.
    let mut result = FrequentSet::new();
    if !candidates.is_empty() {
        let max_k = candidates.iter().map(|c| c.len()).max().unwrap();
        let mut trees: Vec<Option<HashTree>> = (0..=max_k).map(|_| None).collect();
        let mut single_counts = vec![0u32; db.num_items() as usize];
        let mut want_singles = vec![false; db.num_items() as usize];
        for c in &candidates {
            if c.len() == 1 {
                want_singles[c.items()[0].index()] = true;
            } else {
                trees[c.len()]
                    .get_or_insert_with(|| HashTree::new(c.len()))
                    .insert(c.clone());
            }
        }
        for (_tid, items) in db.iter() {
            for &it in items {
                single_counts[it.index()] += 1;
            }
            for tree in trees.iter().flatten() {
                tree.count_transaction(items, &mut meter);
            }
        }
        for (i, (&c, &want)) in single_counts.iter().zip(&want_singles).enumerate() {
            if want && c >= threshold {
                result.insert(Itemset::single(ItemId(i as u32)), c);
            }
        }
        for tree in trees.iter().flatten() {
            for (is, c) in tree.frequent(threshold) {
                result.insert(is, c);
            }
        }
    }

    let possibly_incomplete = result.iter().any(|(is, _)| border_set.contains(is));
    let report = SamplingReport {
        sample_size,
        candidates: candidates.len(),
        confirmed: result.len(),
        possibly_incomplete,
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brute_force, random_db};

    #[test]
    fn results_are_sound_subset_of_truth() {
        let db = random_db(4, 400, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let truth = brute_force(&db, minsup);
        let (fs, report) = mine_with_sampling(
            &db,
            minsup,
            &SamplingConfig {
                sample_fraction: 0.25,
                support_lowering: 0.7,
                seed: 5,
            },
        );
        // soundness: every reported itemset is truly frequent with the
        // exact support
        for (is, sup) in fs.iter() {
            assert_eq!(truth.support_of(is), Some(sup), "{is}");
        }
        assert_eq!(report.confirmed, fs.len());
        assert!(report.candidates >= report.confirmed);
        assert!(report.sample_size > 50 && report.sample_size < 200);
    }

    #[test]
    fn full_sample_with_no_lowering_is_exact() {
        let db = random_db(9, 150, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let truth = brute_force(&db, minsup);
        let (fs, report) = mine_with_sampling(
            &db,
            minsup,
            &SamplingConfig {
                sample_fraction: 1.0,
                support_lowering: 1.0,
                seed: 0,
            },
        );
        assert_eq!(fs, truth);
        assert_eq!(report.sample_size, 150);
    }

    #[test]
    fn generous_sampling_recovers_nearly_everything() {
        // [17]'s empirical point: modest samples with lowered support
        // find almost all frequent itemsets.
        let db = random_db(13, 600, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let truth = brute_force(&db, minsup);
        let (fs, _) = mine_with_sampling(
            &db,
            minsup,
            &SamplingConfig {
                sample_fraction: 0.3,
                support_lowering: 0.6,
                seed: 2,
            },
        );
        let recovered = truth.iter().filter(|(is, _)| fs.contains(is)).count();
        let recall = recovered as f64 / truth.len() as f64;
        assert!(
            recall > 0.9,
            "recall {recall:.2} ({recovered}/{})",
            truth.len()
        );
    }

    #[test]
    fn complete_when_certificate_says_so() {
        // Toivonen's guarantee: if possibly_incomplete == false, the
        // result equals the exact answer.
        for seed in 0..6u64 {
            let db = random_db(seed, 300, 10, 5);
            let minsup = MinSupport::from_percent(8.0);
            let (fs, report) = mine_with_sampling(
                &db,
                minsup,
                &SamplingConfig {
                    sample_fraction: 0.4,
                    support_lowering: 0.5,
                    seed,
                },
            );
            if !report.possibly_incomplete {
                assert_eq!(fs, brute_force(&db, minsup), "seed {seed}");
            }
        }
    }

    #[test]
    fn negative_border_is_minimal_non_members() {
        let fs: FrequentSet = [
            (Itemset::of(&[0]), 5),
            (Itemset::of(&[1]), 5),
            (Itemset::of(&[2]), 4),
            (Itemset::of(&[0, 1]), 3),
        ]
        .into_iter()
        .collect();
        let border = negative_border(&fs, 4);
        // item 3 is not frequent → in border; {0,2},{1,2} generated from
        // L1 but not members → border; {0,1,x} needs L2 pairs... only
        // {0,1} exists, no join partner → nothing at level 3.
        assert!(border.contains(&Itemset::of(&[3])));
        assert!(border.contains(&Itemset::of(&[0, 2])));
        assert!(border.contains(&Itemset::of(&[1, 2])));
        assert!(!border.contains(&Itemset::of(&[0, 1])));
        // every border member's proper subsets are in fs
        for b in &border {
            for sub in b.one_smaller_subsets() {
                if !sub.is_empty() {
                    assert!(fs.contains(&sub), "border {b} has missing subset {sub}");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let db = random_db(3, 200, 10, 5);
        let minsup = MinSupport::from_percent(10.0);
        let cfg = SamplingConfig::default();
        let (a, ra) = mine_with_sampling(&db, minsup, &cfg);
        let (b, rb) = mine_with_sampling(&db, minsup, &cfg);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn rejects_zero_fraction() {
        let db = random_db(1, 10, 5, 3);
        mine_with_sampling(
            &db,
            MinSupport::from_percent(10.0),
            &SamplingConfig {
                sample_fraction: 0.0,
                ..Default::default()
            },
        );
    }
}
