//! The full sequential Apriori loop (Figure 1 of the paper).

use crate::gen::generate_candidates;
use crate::hash_tree::{HashTree, DEFAULT_FANOUT, DEFAULT_LEAF_THRESHOLD};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter, TriangleMatrix};

/// Tuning knobs for Apriori.
#[derive(Clone, Debug)]
pub struct AprioriConfig {
    /// Count `C2` with the upper-triangular array instead of the hash
    /// tree. This is the optimization CCPD and Eclat's initialization
    /// phase use (§5.1); plain Apriori corresponds to `false`.
    pub triangle_l2: bool,
    /// Hash-tree fanout.
    pub fanout: usize,
    /// Hash-tree leaf split threshold.
    pub leaf_threshold: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            triangle_l2: true,
            fanout: DEFAULT_FANOUT,
            leaf_threshold: DEFAULT_LEAF_THRESHOLD,
        }
    }
}

/// Mine all frequent itemsets (sizes ≥ 1) with default configuration.
pub fn mine(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_with(db, minsup, &AprioriConfig::default(), &mut meter)
}

/// Mine with explicit configuration and operation metering.
///
/// Implements Figure 1: `L1` from a counting scan; then for `k = 2, 3, …`
/// generate `C_k` from `L_{k-1}` (join + prune), count every transaction's
/// k-subsets against the candidate hash tree, and select `L_k`; stop when
/// `L_k` is empty.
pub fn mine_with(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &AprioriConfig,
    meter: &mut OpMeter,
) -> FrequentSet {
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut result = FrequentSet::new();

    // --- L1: one counting scan over the database.
    let mut item_counts = vec![0u32; db.num_items() as usize];
    for (_tid, items) in db.iter() {
        meter.record += 1;
        for &it in items {
            item_counts[it.index()] += 1;
        }
    }
    let mut l_prev: Vec<Itemset> = Vec::new();
    for (i, &c) in item_counts.iter().enumerate() {
        if c >= threshold {
            let is = Itemset::single(ItemId(i as u32));
            result.insert(is.clone(), c);
            l_prev.push(is);
        }
    }
    // l_prev is sorted by construction (ascending item index).

    let mut k = 2usize;
    while !l_prev.is_empty() {
        let mut l_cur: Vec<(Itemset, u32)> = Vec::new();

        if k == 2 && cfg.triangle_l2 {
            // Triangular-array counting (§5.1): every pair of frequent
            // items, one scan, no candidate structure.
            let frequent_item = |it: ItemId| item_counts[it.index()] >= threshold;
            let mut tri = TriangleMatrix::new(db.num_items() as usize);
            let mut scratch: Vec<ItemId> = Vec::new();
            for (_tid, items) in db.iter() {
                meter.record += 1;
                scratch.clear();
                scratch.extend(items.iter().copied().filter(|&i| frequent_item(i)));
                meter.pair_incr += (scratch.len() * scratch.len().saturating_sub(1) / 2) as u64;
                tri.count_transaction(&scratch);
            }
            l_cur = tri
                .frequent_pairs(threshold)
                .map(|(a, b, c)| (Itemset::pair(a, b), c))
                .collect();
        } else {
            let candidates = generate_candidates(&l_prev, meter);
            if !candidates.is_empty() {
                let mut tree = HashTree::with_params(k, cfg.fanout, cfg.leaf_threshold);
                for c in candidates {
                    tree.insert(c);
                }
                for (_tid, items) in db.iter() {
                    meter.record += 1;
                    tree.count_transaction(items, meter);
                }
                l_cur = tree.frequent(threshold);
            }
        }

        for (is, c) in &l_cur {
            result.insert(is.clone(), *c);
        }
        l_prev = l_cur.into_iter().map(|(is, _)| is).collect();
        k += 1;
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    /// Small hand-checkable database.
    fn toy() -> HorizontalDb {
        HorizontalDb::of(&[&[0, 1, 2], &[0, 1], &[0, 2], &[1, 2], &[0, 1, 2], &[3]])
    }

    #[test]
    fn hand_checked_supports() {
        let db = toy();
        // counts: 0→4, 1→4, 2→4, 3→1; {0,1}→3, {0,2}→3, {1,2}→3, {0,1,2}→2
        let fs = mine(&db, MinSupport::from_fraction(0.5)); // threshold = 3
        assert_eq!(fs.support_of(&iset(&[0])), Some(4));
        assert_eq!(fs.support_of(&iset(&[0, 1])), Some(3));
        assert_eq!(fs.support_of(&iset(&[3])), None);
        assert_eq!(fs.support_of(&iset(&[0, 1, 2])), None, "support 2 < 3");
        assert_eq!(fs.len(), 6);
    }

    #[test]
    fn triangle_and_hashtree_l2_agree() {
        let db = toy();
        let minsup = MinSupport::from_fraction(0.3);
        let mut m1 = OpMeter::new();
        let mut m2 = OpMeter::new();
        let with_tri = mine_with(
            &db,
            minsup,
            &AprioriConfig {
                triangle_l2: true,
                ..Default::default()
            },
            &mut m1,
        );
        let with_tree = mine_with(
            &db,
            minsup,
            &AprioriConfig {
                triangle_l2: false,
                ..Default::default()
            },
            &mut m2,
        );
        assert_eq!(with_tri, with_tree);
        assert!(m1.pair_incr > 0);
        assert!(m2.subsets_gen > 0);
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        for seed in 0..4u64 {
            let db = reference::random_db(seed, 60, 10, 5);
            for pct in [5.0, 10.0, 20.0] {
                let minsup = MinSupport::from_percent(pct);
                let ours = mine(&db, minsup);
                let truth = reference::brute_force(&db, minsup);
                assert_eq!(ours, truth, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn downward_closure_holds() {
        let db = reference::random_db(9, 100, 12, 6);
        let fs = mine(&db, MinSupport::from_percent(8.0));
        assert_eq!(fs.closure_violation(), None);
        assert!(
            fs.max_size() >= 2,
            "the test db should have some 2-itemsets"
        );
    }

    #[test]
    fn empty_and_degenerate_databases() {
        let empty = HorizontalDb::of(&[]);
        assert!(mine(&empty, MinSupport::from_percent(1.0)).is_empty());

        let singles = HorizontalDb::of(&[&[0], &[0], &[1]]);
        let fs = mine(&singles, MinSupport::from_fraction(0.5));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.support_of(&iset(&[0])), Some(2));
    }

    #[test]
    fn support_one_hundred_percent() {
        let db = HorizontalDb::of(&[&[1, 2], &[1, 2], &[1, 2]]);
        let fs = mine(&db, MinSupport::from_fraction(1.0));
        assert_eq!(fs.len(), 3); // {1}, {2}, {1,2}
        assert_eq!(fs.support_of(&iset(&[1, 2])), Some(3));
    }
}
