//! The Partition algorithm — the paper's reference \[14\] (Savasere,
//! Omiecinski & Navathe, VLDB 1995), discussed in §1.2:
//!
//! *"The Partition algorithm minimizes I/O by scanning the database only
//! twice. It partitions the database into small chunks which can be
//! handled in memory. In the first pass it generates the set of all
//! potentially frequent itemsets (any itemset locally frequent in a
//! partition), and in the second pass their global support is obtained."*
//!
//! Soundness rests on the pigeonhole property: a globally frequent
//! itemset must be locally frequent (at the proportionally scaled
//! threshold) in at least one partition — so the union of local results
//! is a superset of the global answer, and one counting pass finishes
//! the job. The original uses *vertical tid-lists inside each partition*
//! ("decomposed storage structure", \[8\]) — exactly the layout this
//! workspace builds for Eclat, so local mining here *is* sequential
//! Eclat plus local singleton counting.

use crate::hash_tree::HashTree;
use dbstore::{BlockPartition, HorizontalDb};
use mining_types::{FrequentSet, FxHashSet, Itemset, MinSupport, OpMeter};

/// Configuration for the Partition algorithm.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of partitions (the original sizes chunks to fit memory).
    pub partitions: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { partitions: 4 }
    }
}

/// Statistics of a Partition run (the two-scan structure is observable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionStats {
    /// Local-pass candidates (union over partitions) per itemset size.
    pub candidates: usize,
    /// How many of the candidates turned out globally frequent.
    pub frequent: usize,
    /// Number of partitions used.
    pub partitions: usize,
}

/// Mine all frequent itemsets (sizes ≥ 1) with the Partition algorithm.
pub fn mine_partition(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &PartitionConfig,
) -> (FrequentSet, PartitionStats) {
    assert!(cfg.partitions >= 1, "need at least one partition");
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);
    let partition = BlockPartition::equal_blocks(n, cfg.partitions);

    // ---- Pass 1: mine every partition locally at the scaled threshold.
    // Local threshold: ceil(fraction · |partition|) via the same rule.
    let mut candidates: FxHashSet<Itemset> = FxHashSet::default();
    for (_p, range) in partition.iter() {
        if range.is_empty() {
            continue;
        }
        // Build a view of the partition as its own database. Tids are
        // re-based implicitly; only itemset identities matter here.
        let local: Vec<Vec<mining_types::ItemId>> =
            db.iter_range(range).map(|(_, t)| t.to_vec()).collect();
        let local_db = HorizontalDb::from_transactions(local).with_num_items(db.num_items());
        let mut meter = OpMeter::new();
        let local_frequent = local_pass(&local_db, minsup, &mut meter);
        candidates.extend(local_frequent);
    }

    // ---- Pass 2: one global counting scan of all candidates.
    let num_candidates = candidates.len();
    let mut result = FrequentSet::new();
    if num_candidates > 0 {
        // Group candidates by size into hash trees for pruned counting.
        let max_k = candidates.iter().map(|c| c.len()).max().unwrap();
        let mut trees: Vec<Option<HashTree>> = (0..=max_k).map(|_| None).collect();
        let mut single_counts = vec![0u32; db.num_items() as usize];
        let mut want_singles: Vec<bool> = vec![false; db.num_items() as usize];
        for c in candidates {
            let k = c.len();
            if k == 1 {
                want_singles[c.items()[0].index()] = true;
            } else {
                trees[k].get_or_insert_with(|| HashTree::new(k)).insert(c);
            }
        }
        let mut meter = OpMeter::new();
        for (_tid, items) in db.iter() {
            for &it in items {
                single_counts[it.index()] += 1;
            }
            for tree in trees.iter().flatten() {
                tree.count_transaction(items, &mut meter);
            }
        }
        for (i, (&c, &want)) in single_counts.iter().zip(&want_singles).enumerate() {
            if want && c >= threshold {
                result.insert(Itemset::single(mining_types::ItemId(i as u32)), c);
            }
        }
        for tree in trees.iter().flatten() {
            for (is, c) in tree.frequent(threshold) {
                result.insert(is, c);
            }
        }
    }

    let stats = PartitionStats {
        candidates: num_candidates,
        frequent: result.len(),
        partitions: cfg.partitions,
    };
    (result, stats)
}

/// Pass-1 local miner: in-crate Apriori (using the `eclat` crate here
/// would create a dependency cycle; the original's in-partition vertical
/// mining is behaviorally equivalent — only itemset *identities* matter
/// in pass 1, exact supports come from pass 2).
fn local_pass(db: &HorizontalDb, minsup: MinSupport, meter: &mut OpMeter) -> Vec<Itemset> {
    let fs = crate::miner::mine_with(db, minsup, &crate::miner::AprioriConfig::default(), meter);
    fs.iter().map(|(is, _)| is.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brute_force, random_db};

    #[test]
    fn matches_brute_force_for_any_partition_count() {
        for seed in [2u64, 11] {
            let db = random_db(seed, 120, 12, 6);
            for pct in [5.0, 15.0] {
                let minsup = MinSupport::from_percent(pct);
                let truth = brute_force(&db, minsup);
                for parts in [1usize, 2, 3, 5, 10] {
                    let (fs, stats) =
                        mine_partition(&db, minsup, &PartitionConfig { partitions: parts });
                    assert_eq!(fs, truth, "seed {seed} pct {pct} parts {parts}");
                    assert!(stats.candidates >= stats.frequent);
                }
            }
        }
    }

    #[test]
    fn no_false_negatives_is_the_pigeonhole_property() {
        // Construct an adversarial database where an itemset is globally
        // frequent but concentrated in one partition.
        let mut txns: Vec<Vec<u32>> = Vec::new();
        for _ in 0..10 {
            txns.push(vec![0, 1]); // hot pair lives in the first block
        }
        for i in 0..30 {
            txns.push(vec![2 + (i % 5)]);
        }
        let raw: Vec<&[u32]> = txns.iter().map(|t| t.as_slice()).collect();
        let db = HorizontalDb::of(&raw);
        let minsup = MinSupport::from_fraction(0.2); // threshold 8 of 40
        let (fs, _) = mine_partition(&db, minsup, &PartitionConfig { partitions: 4 });
        assert_eq!(fs.support_of(&Itemset::of(&[0, 1])), Some(10));
    }

    #[test]
    fn more_partitions_generate_no_fewer_candidates() {
        // Looser local thresholds (smaller partitions) admit more
        // spurious local candidates — the algorithm's classic tradeoff.
        let db = random_db(7, 200, 12, 6);
        let minsup = MinSupport::from_percent(8.0);
        let (_, s2) = mine_partition(&db, minsup, &PartitionConfig { partitions: 2 });
        let (_, s10) = mine_partition(&db, minsup, &PartitionConfig { partitions: 10 });
        assert!(s10.candidates >= s2.candidates, "{s10:?} vs {s2:?}");
        assert_eq!(s10.frequent, s2.frequent);
    }

    #[test]
    fn single_partition_is_exact_immediately() {
        let db = random_db(5, 100, 10, 5);
        let minsup = MinSupport::from_percent(10.0);
        let (fs, stats) = mine_partition(&db, minsup, &PartitionConfig { partitions: 1 });
        assert_eq!(stats.candidates, stats.frequent);
        assert_eq!(fs, brute_force(&db, minsup));
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        let (fs, _) = mine_partition(&db, MinSupport::from_percent(5.0), &Default::default());
        assert!(fs.is_empty());
    }
}
