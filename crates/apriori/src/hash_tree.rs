//! The candidate hash tree of Apriori (§2 of the paper).
//!
//! *"The candidates, Ck, are stored in a hash tree to facilitate fast
//! support counting. An internal node of the hash tree at depth d contains
//! a hash table whose cells point to nodes at depth d+1. All the itemsets
//! are stored in the leaves."*
//!
//! Counting follows the paper's description exactly: *"for each
//! transaction in the database, all k-subsets of the transaction are
//! generated in lexicographical order. Each subset is searched in the
//! hash tree, and the count of the candidate incremented if it matches
//! the subset."* The search is an exact descent — hash on successive
//! subset items, then a linear probe of the leaf — so no candidate can be
//! double-counted.

use mining_types::{hash::hash_u64, ItemId, Itemset, OpMeter};
use std::sync::atomic::{AtomicU32, Ordering};

/// Default hash-table width of interior nodes.
pub const DEFAULT_FANOUT: usize = 512;
/// Default maximum leaf size before splitting.
pub const DEFAULT_LEAF_THRESHOLD: usize = 32;

/// A candidate `k`-itemset hash tree with per-candidate counts.
#[derive(Debug)]
pub struct HashTree {
    k: usize,
    fanout: usize,
    leaf_threshold: usize,
    root: Node,
    len: usize,
}

#[derive(Debug)]
enum Node {
    Interior(Vec<Node>),
    Leaf(Vec<Entry>),
}

#[derive(Debug)]
struct Entry {
    items: Itemset,
    /// Atomic so CCPD-style shared-tree counting (the paper's \[16\]) can
    /// update the shared structure from many threads; single-threaded
    /// callers pay only a relaxed add.
    count: AtomicU32,
}

impl HashTree {
    /// Empty tree for `k`-itemset candidates with default parameters.
    pub fn new(k: usize) -> HashTree {
        Self::with_params(k, DEFAULT_FANOUT, DEFAULT_LEAF_THRESHOLD)
    }

    /// Empty tree with explicit fanout and leaf threshold.
    ///
    /// # Panics
    /// Panics if `k == 0`, `fanout < 2`, or `leaf_threshold == 0`.
    pub fn with_params(k: usize, fanout: usize, leaf_threshold: usize) -> HashTree {
        assert!(k >= 1, "candidates must have at least one item");
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(leaf_threshold >= 1, "leaf threshold must be at least 1");
        HashTree {
            k,
            fanout,
            leaf_threshold,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Build a tree from candidates.
    pub fn from_candidates<I: IntoIterator<Item = Itemset>>(k: usize, cands: I) -> HashTree {
        let mut t = HashTree::new(k);
        for c in cands {
            t.insert(c);
        }
        t
    }

    /// Candidate size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a candidate `k`-itemset with count zero.
    ///
    /// # Panics
    /// Panics if the itemset size differs from `k` or it is a duplicate.
    pub fn insert(&mut self, candidate: Itemset) {
        assert_eq!(
            candidate.len(),
            self.k,
            "candidate size must be k={}",
            self.k
        );
        let (fanout, threshold, k) = (self.fanout, self.leaf_threshold, self.k);
        let mut node = &mut self.root;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Interior(children) => {
                    let b = (hash_u64(candidate.items()[depth].0 as u64) % fanout as u64) as usize;
                    node = &mut children[b];
                    depth += 1;
                }
                Node::Leaf(entries) => {
                    assert!(
                        !entries.iter().any(|e| e.items == candidate),
                        "duplicate candidate {candidate}"
                    );
                    entries.push(Entry {
                        items: candidate,
                        count: AtomicU32::new(0),
                    });
                    self.len += 1;
                    // Split an overfull leaf — unless we've already hashed
                    // on all k items, in which case the leaf must absorb
                    // the overflow (classic hash-tree rule).
                    if entries.len() > threshold && depth < k {
                        let old = std::mem::take(entries);
                        let mut children: Vec<Node> =
                            (0..fanout).map(|_| Node::Leaf(Vec::new())).collect();
                        for e in old {
                            let b = (hash_u64(e.items.items()[depth].0 as u64) % fanout as u64)
                                as usize;
                            match &mut children[b] {
                                Node::Leaf(l) => l.push(e),
                                Node::Interior(_) => unreachable!(),
                            }
                        }
                        *node = Node::Interior(children);
                        // Note: a child may itself now exceed the
                        // threshold; it will split on its next insert.
                    }
                    return;
                }
            }
        }
    }

    /// Exact search: increment the candidate equal to `subset` if present.
    /// Returns whether a candidate matched. `meter` counts hash probes.
    /// Takes `&self`: counts are atomic (relaxed), so concurrent counting
    /// threads sharing one tree are safe — the CCPD model of \[16\].
    pub fn increment(&self, subset: &[ItemId], meter: &mut OpMeter) -> bool {
        debug_assert_eq!(subset.len(), self.k);
        let fanout = self.fanout;
        let mut node = &self.root;
        let mut depth = 0usize;
        loop {
            meter.hash_probe += 1;
            match node {
                Node::Interior(children) => {
                    let b = (hash_u64(subset[depth].0 as u64) % fanout as u64) as usize;
                    node = &children[b];
                    depth += 1;
                }
                Node::Leaf(entries) => {
                    for e in entries {
                        meter.hash_probe += 1;
                        if e.items.items() == subset {
                            e.count.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                    }
                    return false;
                }
            }
        }
    }

    /// Count all candidates against one (sorted) transaction by pruned
    /// hash-tree traversal.
    ///
    /// The recursion chooses transaction items left to right, descending
    /// into the child their hash selects; subtrees that hold no candidate
    /// prune their *entire family* of subsets at once — the
    /// *short-circuited subset counting* optimization of CCPD \[16\].
    /// (The paper's literal description — "all k-subsets … are generated
    /// in lexicographical order \[and\] searched in the hash tree" — is the
    /// unpruned equivalent, kept as
    /// [`HashTree::count_transaction_naive`]; both produce identical
    /// counts, but the naive form is `O(2^|t|)` on long transactions.)
    ///
    /// A leaf candidate is matched by requiring its first `d` items to
    /// *equal* the chosen path items (not merely hash-collide) and its
    /// remaining items to be a subset of the transaction suffix; because
    /// transaction items are unique, each contained candidate is counted
    /// exactly once.
    pub fn count_transaction(&self, txn: &[ItemId], meter: &mut OpMeter) {
        if txn.len() < self.k || self.is_empty() {
            return;
        }
        let (k, fanout) = (self.k, self.fanout);
        let mut chosen: Vec<ItemId> = Vec::with_capacity(k);
        descend(&self.root, k, fanout, txn, 0, &mut chosen, meter);
    }

    /// The paper's literal counting procedure: generate every k-subset of
    /// the transaction in lexicographic order and search each exactly.
    /// Used by tests to validate the pruned traversal and by the A-series
    /// ablations to quantify the pruning win.
    pub fn count_transaction_naive(&self, txn: &[ItemId], meter: &mut OpMeter) {
        if txn.len() < self.k || self.is_empty() {
            return;
        }
        let txn_set = Itemset::from_sorted(txn.to_vec());
        let mut subsets = txn_set.k_subsets(self.k);
        let mut buf: Vec<ItemId> = Vec::with_capacity(self.k);
        while subsets.next_into(&mut buf) {
            meter.subsets_gen += 1;
            self.increment(&buf, meter);
        }
    }

    /// Drain candidates meeting `minsup` into `(itemset, count)` pairs,
    /// sorted lexicographically — the `L_k` selection step of Figure 1.
    pub fn frequent(&self, minsup: u32) -> Vec<(Itemset, u32)> {
        let mut out = Vec::new();
        collect(&self.root, minsup, &mut out);
        out.sort();
        out
    }

    /// All candidates with their current counts (sorted; test support).
    pub fn all_counts(&self) -> Vec<(Itemset, u32)> {
        self.frequent(0)
    }

    /// Add another tree's counts into this one — the per-candidate
    /// sum-reduction of Count Distribution. Trees must contain the same
    /// candidate sets (they do by construction: every processor builds the
    /// identical tree from the global `L_{k-1}`).
    ///
    /// # Panics
    /// Panics if the candidate sets differ.
    pub fn merge_counts(&self, other: &HashTree) {
        assert_eq!(self.k, other.k);
        let theirs = other.all_counts();
        assert_eq!(self.len, theirs.len(), "candidate sets differ");
        for (is, c) in theirs {
            let added = self.add_count(is.items(), c);
            assert!(added, "candidate missing during merge");
        }
    }

    /// Add `delta` to the exact candidate `subset`. Returns whether found.
    pub fn add_count(&self, subset: &[ItemId], delta: u32) -> bool {
        let fanout = self.fanout;
        let mut node = &self.root;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Interior(children) => {
                    let b = (hash_u64(subset[depth].0 as u64) % fanout as u64) as usize;
                    node = &children[b];
                    depth += 1;
                }
                Node::Leaf(entries) => {
                    for e in entries {
                        if e.items.items() == subset {
                            e.count.fetch_add(delta, Ordering::Relaxed);
                            return true;
                        }
                    }
                    return false;
                }
            }
        }
    }

    /// Raw count vector in lexicographic candidate order — the message a
    /// Count Distribution processor exchanges (only counts travel, §3.1).
    pub fn counts_vector(&self) -> Vec<u32> {
        self.all_counts().into_iter().map(|(_, c)| c).collect()
    }

    /// Add a lexicographically ordered count vector (inverse of
    /// [`HashTree::counts_vector`]).
    ///
    /// # Panics
    /// Panics if the vector length differs from the candidate count.
    pub fn add_counts_vector(&self, counts: &[u32]) {
        let order: Vec<Itemset> = self.all_counts().into_iter().map(|(is, _)| is).collect();
        assert_eq!(order.len(), counts.len(), "count vector length mismatch");
        for (is, &c) in order.iter().zip(counts) {
            if c > 0 {
                let ok = self.add_count(is.items(), c);
                debug_assert!(ok);
            }
        }
    }

    /// Tree depth (longest root→leaf path; diagnostic/statistics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 0,
                Node::Interior(ch) => 1 + ch.iter().map(d).max().unwrap_or(0),
            }
        }
        d(&self.root)
    }
}

/// Pruned counting recursion (see [`HashTree::count_transaction`]).
fn descend(
    node: &Node,
    k: usize,
    fanout: usize,
    txn: &[ItemId],
    pos: usize,
    chosen: &mut Vec<ItemId>,
    meter: &mut OpMeter,
) {
    meter.hash_probe += 1;
    match node {
        Node::Leaf(entries) => {
            let d = chosen.len();
            for e in entries {
                meter.hash_probe += 1;
                let items = e.items.items();
                if items[..d] == chosen[..] && is_subset_sorted(&items[d..], &txn[pos..]) {
                    meter.subsets_gen += 1;
                    e.count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Node::Interior(children) => {
            let depth = chosen.len();
            // Need k - depth - 1 further items after the one chosen here.
            let last_pos = txn.len() - (k - depth);
            for i in pos..=last_pos {
                let b = (hash_u64(txn[i].0 as u64) % fanout as u64) as usize;
                chosen.push(txn[i]);
                descend(&children[b], k, fanout, txn, i + 1, chosen, meter);
                chosen.pop();
            }
        }
    }
}

/// Merge subset test over two sorted slices.
fn is_subset_sorted(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    let mut it = haystack.iter();
    'outer: for want in needle {
        for have in it.by_ref() {
            match have.cmp(want) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

fn collect(node: &Node, minsup: u32, out: &mut Vec<(Itemset, u32)>) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                let c = e.count.load(Ordering::Relaxed);
                if c >= minsup {
                    out.push((e.items.clone(), c));
                }
            }
        }
        Node::Interior(children) => {
            for c in children {
                collect(c, minsup, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn items(raw: &[u32]) -> Vec<ItemId> {
        raw.iter().copied().map(ItemId).collect()
    }

    #[test]
    fn insert_and_exact_increment() {
        let mut t = HashTree::new(2);
        t.insert(iset(&[1, 2]));
        t.insert(iset(&[1, 3]));
        assert_eq!(t.len(), 2);
        let mut m = OpMeter::new();
        assert!(t.increment(&items(&[1, 2]), &mut m));
        assert!(t.increment(&items(&[1, 2]), &mut m));
        assert!(!t.increment(&items(&[2, 3]), &mut m));
        assert!(m.hash_probe > 0);
        let counts = t.all_counts();
        assert_eq!(counts, vec![(iset(&[1, 2]), 2), (iset(&[1, 3]), 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate")]
    fn duplicate_insert_panics() {
        let mut t = HashTree::new(2);
        t.insert(iset(&[1, 2]));
        t.insert(iset(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "size must be k")]
    fn wrong_size_insert_panics() {
        let mut t = HashTree::new(2);
        t.insert(iset(&[1, 2, 3]));
    }

    #[test]
    fn splitting_preserves_candidates() {
        // Force splits with a tiny leaf threshold.
        let mut t = HashTree::with_params(3, 4, 2);
        let mut all = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..6 {
                for c in b + 1..7 {
                    let is = iset(&[a, b, c]);
                    t.insert(is.clone());
                    all.push(is);
                }
            }
        }
        all.sort();
        assert_eq!(t.len(), all.len());
        assert!(t.depth() >= 1, "splits must have happened");
        let stored: Vec<Itemset> = t.all_counts().into_iter().map(|(i, _)| i).collect();
        assert_eq!(stored, all);
        // every candidate findable by exact search
        let mut m = OpMeter::new();
        for is in &all {
            assert!(t.increment(is.items(), &mut m), "lost {is}");
        }
    }

    #[test]
    fn count_transaction_counts_each_contained_candidate_once() {
        let mut t = HashTree::with_params(2, 4, 1);
        for c in [[1u32, 2], [1, 3], [2, 3], [4, 5]] {
            t.insert(iset(&c));
        }
        let mut m = OpMeter::new();
        t.count_transaction(&items(&[1, 2, 3]), &mut m);
        let counts = t.all_counts();
        assert_eq!(
            counts,
            vec![
                (iset(&[1, 2]), 1),
                (iset(&[1, 3]), 1),
                (iset(&[2, 3]), 1),
                (iset(&[4, 5]), 0),
            ]
        );
        // C(3,2) = 3 subsets generated
        assert_eq!(m.subsets_gen, 3);
    }

    #[test]
    fn count_transaction_short_circuits_small_transactions() {
        let mut t = HashTree::new(3);
        t.insert(iset(&[1, 2, 3]));
        let mut m = OpMeter::new();
        t.count_transaction(&items(&[1, 2]), &mut m);
        assert_eq!(m.subsets_gen, 0, "|t| < k generates nothing");
        assert_eq!(t.all_counts()[0].1, 0);
    }

    #[test]
    fn frequent_filters_by_minsup() {
        let mut t = HashTree::new(1);
        t.insert(iset(&[1]));
        t.insert(iset(&[2]));
        let mut m = OpMeter::new();
        for _ in 0..3 {
            t.increment(&items(&[1]), &mut m);
        }
        t.increment(&items(&[2]), &mut m);
        assert_eq!(t.frequent(2), vec![(iset(&[1]), 3)]);
        assert_eq!(t.frequent(4), vec![]);
    }

    #[test]
    fn counts_vector_round_trip() {
        let mut a = HashTree::new(2);
        let mut b = HashTree::new(2);
        for c in [[1u32, 2], [3, 4], [1, 4]] {
            a.insert(iset(&c));
            b.insert(iset(&c));
        }
        let mut m = OpMeter::new();
        a.increment(&items(&[1, 2]), &mut m);
        a.increment(&items(&[1, 4]), &mut m);
        b.increment(&items(&[1, 4]), &mut m);
        // simulate the count exchange: b receives a's counts
        let v = a.counts_vector();
        b.add_counts_vector(&v);
        let merged = b.all_counts();
        assert_eq!(
            merged,
            vec![(iset(&[1, 2]), 1), (iset(&[1, 4]), 2), (iset(&[3, 4]), 0)]
        );
    }

    #[test]
    fn merge_counts_sums() {
        let mut a = HashTree::new(2);
        let mut b = HashTree::new(2);
        for c in [[1u32, 2], [3, 4]] {
            a.insert(iset(&c));
            b.insert(iset(&c));
        }
        let mut m = OpMeter::new();
        a.increment(&items(&[1, 2]), &mut m);
        b.increment(&items(&[1, 2]), &mut m);
        b.increment(&items(&[3, 4]), &mut m);
        a.merge_counts(&b);
        assert_eq!(a.all_counts(), vec![(iset(&[1, 2]), 2), (iset(&[3, 4]), 1)]);
    }

    #[test]
    fn pruned_traversal_matches_naive_enumeration() {
        // Random candidates + random transactions: both counting paths
        // must produce identical counts, with the pruned one touching
        // far fewer nodes on long transactions.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for k in [2usize, 3, 4] {
            let mut pruned = HashTree::with_params(k, 8, 2);
            let mut naive = HashTree::with_params(k, 8, 2);
            let mut seen = std::collections::HashSet::new();
            while seen.len() < 40 {
                let items: Vec<u32> = (0..k).map(|_| (next() % 30) as u32).collect();
                let is = Itemset::from_unsorted(items.into_iter().map(ItemId));
                if is.len() == k && seen.insert(is.clone()) {
                    pruned.insert(is.clone());
                    naive.insert(is);
                }
            }
            let mut m_pruned = OpMeter::new();
            let mut m_naive = OpMeter::new();
            for _ in 0..50 {
                let len = 3 + (next() % 20) as usize;
                let mut txn: Vec<u32> = (0..len).map(|_| (next() % 30) as u32).collect();
                txn.sort_unstable();
                txn.dedup();
                let txn: Vec<ItemId> = txn.into_iter().map(ItemId).collect();
                pruned.count_transaction(&txn, &mut m_pruned);
                naive.count_transaction_naive(&txn, &mut m_naive);
            }
            assert_eq!(pruned.all_counts(), naive.all_counts(), "k={k}");
            assert!(
                m_pruned.hash_probe <= m_naive.hash_probe + m_naive.subsets_gen,
                "pruned should not do more work"
            );
        }
    }

    #[test]
    fn deep_tree_when_k_items_all_hashed() {
        // leaf threshold 1, fanout 2 → heavy collisions; leaves at depth k
        // must absorb overflow without infinite splitting.
        let mut t = HashTree::with_params(2, 2, 1);
        for c in [[0u32, 2], [0, 4], [0, 6], [2, 4], [2, 6], [4, 6]] {
            t.insert(iset(&c));
        }
        assert_eq!(t.len(), 6);
        assert!(t.depth() <= 2, "depth is bounded by k");
        let mut m = OpMeter::new();
        for c in [[0u32, 2], [0, 4], [0, 6], [2, 4], [2, 6], [4, 6]] {
            assert!(t.increment(&items(&c), &mut m));
        }
    }
}
