//! Brute-force reference miner and random-database helpers — the test
//! oracle every algorithm in the workspace is checked against.
//!
//! Exhaustively enumerates all itemsets over the (small!) item universe
//! and counts supports by scanning. Exponential in the number of items, so
//! only usable with `num_items ≤ ~16`; tests keep universes tiny.

use dbstore::HorizontalDb;
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport};

/// Exhaustive miner: every itemset of every size, counted by scan.
///
/// # Panics
/// Panics if the item universe exceeds 20 items (2^20 itemsets is already
/// a million — the oracle is for toy inputs only).
pub fn brute_force(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let n = db.num_items();
    assert!(n <= 20, "brute force oracle limited to 20 items, got {n}");
    let threshold = minsup.count_threshold(db.num_transactions());

    // Bitmask per transaction for O(1) subset checks.
    let masks: Vec<u32> = db
        .iter()
        .map(|(_, items)| items.iter().fold(0u32, |m, &i| m | (1 << i.0)))
        .collect();

    let mut out = FrequentSet::new();
    for candidate in 1u32..(1u32 << n) {
        let support = masks
            .iter()
            .filter(|&&m| m & candidate == candidate)
            .count() as u32;
        if support >= threshold {
            let items: Vec<ItemId> = (0..n)
                .filter(|b| candidate & (1 << b) != 0)
                .map(ItemId)
                .collect();
            out.insert(Itemset::from_sorted(items), support);
        }
    }
    out
}

/// Deterministic random database for cross-checking: `num_txns`
/// transactions over `num_items` items, average length ~`avg_len`.
///
/// Uses a tiny xorshift generator so this module needs no `rand`
/// dependency and test inputs are stable forever.
pub fn random_db(seed: u64, num_txns: usize, num_items: u32, avg_len: usize) -> HorizontalDb {
    assert!(num_items >= 1);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut txns = Vec::with_capacity(num_txns);
    for _ in 0..num_txns {
        let len = 1 + (next() as usize) % (2 * avg_len.max(1));
        let mut items: Vec<ItemId> = (0..len)
            .map(|_| ItemId((next() % num_items as u64) as u32))
            .collect();
        items.sort_unstable();
        items.dedup();
        txns.push(items);
    }
    HorizontalDb::from_transactions(txns).with_num_items(num_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_hand_example() {
        let db = HorizontalDb::of(&[&[0, 1], &[0, 1], &[0], &[1, 2]]);
        let fs = brute_force(&db, MinSupport::from_fraction(0.5));
        // threshold 2: {0}→3 ✓, {1}→3 ✓, {2}→1 ✗, {0,1}→2 ✓, {1,2}→1 ✗
        assert_eq!(fs.len(), 3);
        assert_eq!(fs.support_of(&Itemset::of(&[0, 1])), Some(2));
        assert_eq!(fs.support_of(&Itemset::of(&[2])), None);
    }

    #[test]
    fn brute_force_is_downward_closed() {
        let db = random_db(3, 80, 12, 5);
        let fs = brute_force(&db, MinSupport::from_percent(10.0));
        assert_eq!(fs.closure_violation(), None);
    }

    #[test]
    fn random_db_is_deterministic_and_valid() {
        let a = random_db(7, 50, 10, 4);
        let b = random_db(7, 50, 10, 4);
        assert_eq!(a, b);
        assert_ne!(a, random_db(8, 50, 10, 4));
        for (_, t) in a.iter() {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0] < w[1]));
            assert!(t.iter().all(|i| i.0 < 10));
        }
    }

    #[test]
    #[should_panic(expected = "limited to 20 items")]
    fn brute_force_rejects_large_universe() {
        let db = HorizontalDb::of(&[&[30]]);
        brute_force(&db, MinSupport::from_percent(1.0));
    }

    #[test]
    fn empty_db() {
        let db = HorizontalDb::of(&[]);
        assert!(brute_force(&db, MinSupport::from_percent(1.0)).is_empty());
    }
}
