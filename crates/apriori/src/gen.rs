//! Candidate generation: join + prune (§2 of the paper).
//!
//! `C_k = { A\[1\]A\[2\]…A[k−2]A[k−1]B[k−1] | A,B ∈ L_{k−1},
//!          A[1:k−2] = B[1:k−2], A[k−1] < B[k−1] }`
//!
//! followed by the pruning step: *"Before inserting an itemset into Ck,
//! Apriori tests whether all its (k−1)-subsets are frequent."*
//!
//! The join is organized by **equivalence classes** — itemsets sharing a
//! `k−2` prefix — which is exactly the §4.1 partitioning Eclat reuses;
//! `partition_classes` here is the single implementation both crates use.

use mining_types::{FxHashSet, Itemset, OpMeter};

/// Group a lexicographically sorted `L_{k-1}` into equivalence classes by
/// common `k-2` prefix. Returns ranges into the input slice.
///
/// # Panics
/// Panics if the slice is not sorted or itemsets have mixed sizes.
pub fn partition_classes(lk1: &[Itemset]) -> Vec<std::ops::Range<usize>> {
    if lk1.is_empty() {
        return Vec::new();
    }
    let k1 = lk1[0].len();
    assert!(k1 >= 1);
    assert!(
        lk1.windows(2).all(|w| w[0] < w[1] && w[1].len() == k1),
        "L_(k-1) must be sorted, duplicate-free, and uniform in size"
    );
    let prefix = k1 - 1;
    let mut classes = Vec::new();
    let mut start = 0usize;
    for i in 1..=lk1.len() {
        if i == lk1.len() || !lk1[i].shares_prefix(&lk1[start], prefix) {
            classes.push(start..i);
            start = i;
        }
    }
    classes
}

/// The join step: all pairwise joins within each equivalence class.
/// Output is sorted. `meter` counts candidates generated.
pub fn join_step(lk1: &[Itemset], meter: &mut OpMeter) -> Vec<Itemset> {
    let mut out = Vec::new();
    for class in partition_classes(lk1) {
        let members = &lk1[class];
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                // Same prefix and members sorted ⇒ join always succeeds.
                let joined = members[i]
                    .join(&members[j])
                    .expect("class members always join");
                meter.cand_gen += 1;
                out.push(joined);
            }
        }
    }
    out.sort();
    out
}

/// The pruning step: drop candidates with an infrequent `(k-1)`-subset.
pub fn prune_candidates(
    candidates: Vec<Itemset>,
    lk1: &[Itemset],
    meter: &mut OpMeter,
) -> Vec<Itemset> {
    let frequent: FxHashSet<&Itemset> = lk1.iter().collect();
    candidates
        .into_iter()
        .filter(|c| {
            c.one_smaller_subsets().all(|sub| {
                meter.hash_probe += 1;
                frequent.contains(&sub)
            })
        })
        .collect()
}

/// Join + prune in one call — the complete candidate generation of §2.
pub fn generate_candidates(lk1: &[Itemset], meter: &mut OpMeter) -> Vec<Itemset> {
    let joined = join_step(lk1, meter);
    prune_candidates(joined, lk1, meter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn paper_l2() -> Vec<Itemset> {
        // §2 / §4.1: L2 = {AB AC AD AE BC BD BE DE}, A..E = 0..4
        vec![
            iset(&[0, 1]),
            iset(&[0, 2]),
            iset(&[0, 3]),
            iset(&[0, 4]),
            iset(&[1, 2]),
            iset(&[1, 3]),
            iset(&[1, 4]),
            iset(&[3, 4]),
        ]
    }

    #[test]
    fn classes_match_paper_example() {
        // §4.1: S_A = {AB,AC,AD,AE}, S_B = {BC,BD,BE}, S_D = {DE}
        let l2 = paper_l2();
        let classes = partition_classes(&l2);
        assert_eq!(classes, vec![0..4, 4..7, 7..8]);
    }

    #[test]
    fn join_matches_paper_c3() {
        let l2 = paper_l2();
        let mut m = OpMeter::new();
        let c3 = join_step(&l2, &mut m);
        let expect: Vec<Itemset> = [
            [0u32, 1, 2],
            [0, 1, 3],
            [0, 1, 4],
            [0, 2, 3],
            [0, 2, 4],
            [0, 3, 4],
            [1, 2, 3],
            [1, 2, 4],
            [1, 3, 4],
        ]
        .iter()
        .map(|r| iset(r))
        .collect();
        assert_eq!(c3, expect);
        assert_eq!(m.cand_gen, 9);
    }

    #[test]
    fn prune_removes_candidates_with_infrequent_subsets() {
        let l2 = paper_l2();
        let mut m = OpMeter::new();
        let c3 = generate_candidates(&l2, &mut m);
        // From the paper's C3, pruning removes those containing CD, CE or
        // missing 2-subsets: ACD needs CD∉L2 → pruned; ACE needs CE → pruned;
        // ADE needs DE ✓, AD ✓, AE ✓ → kept; BCD needs CD → pruned;
        // BCE needs CE → pruned; BDE needs DE ✓ → kept.
        let expect: Vec<Itemset> = [
            [0u32, 1, 2], // ABC: AB,AC,BC ✓
            [0, 1, 3],    // ABD: AB,AD,BD ✓
            [0, 1, 4],    // ABE: AB,AE,BE ✓
            [0, 3, 4],    // ADE
            [1, 3, 4],    // BDE
        ]
        .iter()
        .map(|r| iset(r))
        .collect();
        assert_eq!(c3, expect);
    }

    #[test]
    fn singleton_class_generates_nothing() {
        // §4.1: "Any class with only 1 member can be eliminated".
        let l2 = vec![iset(&[3, 4])];
        let mut m = OpMeter::new();
        assert!(join_step(&l2, &mut m).is_empty());
    }

    #[test]
    fn l1_join_generates_all_pairs() {
        let l1 = vec![iset(&[1]), iset(&[5]), iset(&[9])];
        let mut m = OpMeter::new();
        let c2 = generate_candidates(&l1, &mut m);
        assert_eq!(c2, vec![iset(&[1, 5]), iset(&[1, 9]), iset(&[5, 9])]);
    }

    #[test]
    fn empty_input() {
        let mut m = OpMeter::new();
        assert!(partition_classes(&[]).is_empty());
        assert!(generate_candidates(&[], &mut m).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_rejected() {
        let l2 = vec![iset(&[1, 3]), iset(&[0, 2])];
        partition_classes(&l2);
    }
}
