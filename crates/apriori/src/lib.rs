//! Sequential Apriori — the algorithm "at the core of all parallel
//! algorithms" the paper compares against (§2, Figure 1).
//!
//! The crate provides:
//!
//! * [`hash_tree`] — the candidate hash tree: interior hash nodes, leaf
//!   buckets, exact subset search; the data structure whose maintenance
//!   and poor cache locality Eclat's §7 argues against;
//! * [`gen`] — candidate generation: the lexicographic `L_{k-1} ⋈ L_{k-1}`
//!   join plus the subset-pruning step, organized by equivalence classes;
//! * [`mine`] / [`mine_with`] — the full iterative algorithm of Figure 1,
//!   with the triangular-array optimization for `L2` available exactly as
//!   CCPD/Eclat use it;
//! * [`partition`] — the two-scan **Partition** algorithm of the paper's
//!   reference \[14\] (§1.2's I/O-minimizing alternative);
//! * [`sampling`] — sample-then-verify mining per references \[15\]/\[17\]
//!   (§1.2's "work with only a small random sample" approach);
//! * [`mod@reference`] — an exhaustive brute-force miner used as the test
//!   oracle for every other algorithm in the workspace.

pub mod gen;
pub mod hash_tree;
pub mod partition;
pub mod reference;
pub mod sampling;

mod miner;

pub use gen::{generate_candidates, prune_candidates};
pub use hash_tree::HashTree;
pub use miner::{mine, mine_with, AprioriConfig};
pub use partition::{mine_partition, PartitionConfig, PartitionStats};
pub use sampling::{mine_with_sampling, SamplingConfig, SamplingReport};
