//! Association rule generation — step 2 of the mining task (§1.1).
//!
//! *"Once the support of frequent itemsets is known, rules of the form
//! X − Y ⇒ Y (where Y ⊂ X) are generated for all frequent itemsets X,
//! provided the rules meet the desired confidence."*
//!
//! Implements the fast rule-generation algorithm of Agrawal & Srikant
//! (the paper's reference \[4\]): consequents are grown level-wise, and a
//! failed consequent prunes all of its supersets — valid because moving
//! an item from antecedent to consequent can only lower confidence.

use mining_types::{FrequentSet, FxHashSet, Itemset};
use std::fmt;

/// One association rule `antecedent ⇒ consequent` with its statistics.
///
/// ```
/// use mining_types::{FrequentSet, Itemset};
/// let fs: FrequentSet = [
///     (Itemset::of(&[1]), 10),
///     (Itemset::of(&[2]), 5),
///     (Itemset::of(&[1, 2]), 4),
/// ].into_iter().collect();
/// let rules = assoc_rules::generate(&fs, 0.5);
/// assert_eq!(rules.len(), 1); // {2} => {1} at confidence 0.8
/// assert!((rules[0].confidence() - 0.8).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The antecedent `X − Y`.
    pub antecedent: Itemset,
    /// The consequent `Y`.
    pub consequent: Itemset,
    /// Absolute support count of `X = antecedent ∪ consequent`.
    pub support: u32,
    /// Absolute support count of the antecedent.
    pub antecedent_support: u32,
    /// Absolute support count of the consequent.
    pub consequent_support: u32,
}

impl Rule {
    /// Confidence `support(X) / support(X − Y)` — the conditional
    /// probability of §1.1.
    pub fn confidence(&self) -> f64 {
        self.support as f64 / self.antecedent_support as f64
    }

    /// Lift relative to consequent base rate, given the database size.
    pub fn lift(&self, num_transactions: usize) -> f64 {
        assert!(num_transactions > 0);
        self.confidence() / (self.consequent_support as f64 / num_transactions as f64)
    }

    /// Support as a fraction of the database.
    pub fn support_fraction(&self, num_transactions: usize) -> f64 {
        assert!(num_transactions > 0);
        self.support as f64 / num_transactions as f64
    }

    /// Leverage: observed minus expected co-occurrence frequency,
    /// `sup(X∪Y)/n − (sup(X)/n)·(sup(Y)/n)`. Zero when antecedent and
    /// consequent are independent, positive when they co-occur more than
    /// chance predicts.
    pub fn leverage(&self, num_transactions: usize) -> f64 {
        assert!(num_transactions > 0);
        let n = num_transactions as f64;
        self.support as f64 / n
            - (self.antecedent_support as f64 / n) * (self.consequent_support as f64 / n)
    }

    /// Conviction: `(1 − sup(Y)/n) / (1 − confidence)` — how much more
    /// often the antecedent appears *without* the consequent than it
    /// would under independence. `1.0` at independence,
    /// [`f64::INFINITY`] for exact (confidence 1) rules.
    pub fn conviction(&self, num_transactions: usize) -> f64 {
        assert!(num_transactions > 0);
        let conf = self.confidence();
        if conf >= 1.0 {
            return f64::INFINITY;
        }
        (1.0 - self.consequent_support as f64 / num_transactions as f64) / (1.0 - conf)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {}  (support {}, confidence {:.3})",
            self.antecedent,
            self.consequent,
            self.support,
            self.confidence()
        )
    }
}

/// Generate all rules meeting `min_confidence` from a **downward-closed**
/// frequent set (it must include every subset of every member, singletons
/// included — e.g. Apriori output, or Eclat with
/// `EclatConfig::with_singletons`).
///
/// Output is sorted by descending confidence, then descending support,
/// then lexicographic antecedent — fully deterministic.
///
/// # Panics
/// Panics if a needed subset's support is missing (i.e. the input was
/// not downward closed).
pub fn generate(frequent: &FrequentSet, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be in [0,1]"
    );
    let mut rules = Vec::new();
    for (x, x_support) in frequent.iter() {
        if x.len() < 2 {
            continue;
        }
        // Level-wise consequent growth with superset pruning.
        let mut consequents: Vec<Itemset> = x.items().iter().map(|&i| Itemset::single(i)).collect();
        while !consequents.is_empty() {
            let mut passing: Vec<Itemset> = Vec::new();
            for y in consequents {
                if y.len() == x.len() {
                    continue; // the antecedent must be non-empty
                }
                let antecedent = x.difference(&y);
                let a_support = support_of(frequent, &antecedent);
                let conf = x_support as f64 / a_support as f64;
                if conf >= min_confidence {
                    rules.push(Rule {
                        antecedent,
                        consequent: y.clone(),
                        support: x_support,
                        antecedent_support: a_support,
                        consequent_support: support_of(frequent, &y),
                    });
                    passing.push(y);
                }
                // failed consequents are dropped — their supersets
                // cannot pass either
            }
            // Grow the next consequent level from the passing ones. A
            // candidate is viable only if *every* one of its k-subsets
            // passed: confidence is antitone in the consequent, so one
            // failed subset dooms the whole superset. Checking all
            // subsets (not just the two joined parents) prunes the
            // candidate before its confidence is ever computed, exactly
            // like the Apriori candidate-closure check.
            let passed: FxHashSet<&Itemset> = passing.iter().collect();
            let mut seen: FxHashSet<Itemset> = FxHashSet::default();
            let mut next: Vec<Itemset> = Vec::new();
            for i in 0..passing.len() {
                for j in i + 1..passing.len() {
                    if let Some(joined) = passing[i].join(&passing[j]) {
                        if joined.len() < x.len()
                            && joined.is_subset_of(x)
                            && !seen.contains(&joined)
                        {
                            seen.insert(joined.clone());
                            if joined
                                .k_subsets(joined.len() - 1)
                                .all(|s| passed.contains(&s))
                            {
                                next.push(joined);
                            }
                        }
                    }
                }
            }
            consequents = next;
        }
    }
    rules.sort_by(|a, b| {
        b.confidence()
            .total_cmp(&a.confidence())
            .then(b.support.cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

fn support_of(frequent: &FrequentSet, itemset: &Itemset) -> u32 {
    frequent.support_of(itemset).unwrap_or_else(|| {
        panic!(
            "rule generation needs a downward-closed frequent set; \
             missing support for {itemset} — did you mine without singletons?"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    /// X = {1,2}: support({1}) = 10, support({2}) = 5, support({1,2}) = 4.
    fn small() -> FrequentSet {
        [(iset(&[1]), 10), (iset(&[2]), 5), (iset(&[1, 2]), 4)]
            .into_iter()
            .collect()
    }

    #[test]
    fn pair_rules_have_correct_confidence() {
        let rules = generate(&small(), 0.0);
        assert_eq!(rules.len(), 2);
        // {2}=>{1}: 4/5 = 0.8 sorts first; {1}=>{2}: 4/10 = 0.4
        assert_eq!(rules[0].antecedent, iset(&[2]));
        assert!((rules[0].confidence() - 0.8).abs() < 1e-12);
        assert_eq!(rules[1].antecedent, iset(&[1]));
        assert!((rules[1].confidence() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        assert_eq!(generate(&small(), 0.5).len(), 1);
        assert_eq!(generate(&small(), 0.81).len(), 0);
        // boundary: exactly 0.8 passes (>=)
        assert_eq!(generate(&small(), 0.8).len(), 1);
    }

    #[test]
    fn triple_generates_six_rules_at_zero_confidence() {
        let fs: FrequentSet = [
            (iset(&[1]), 8),
            (iset(&[2]), 8),
            (iset(&[3]), 8),
            (iset(&[1, 2]), 6),
            (iset(&[1, 3]), 6),
            (iset(&[2, 3]), 6),
            (iset(&[1, 2, 3]), 5),
        ]
        .into_iter()
        .collect();
        let rules = generate(&fs, 0.0);
        // pairs: 2 rules each ×3 = 6; triple: 3 single-consequent +
        // 3 double-consequent = 6 → 12 total
        assert_eq!(rules.len(), 12);
        // every rule's claimed supports are consistent
        for r in &rules {
            let x = r.antecedent.union(&r.consequent);
            assert_eq!(fs.support_of(&x), Some(r.support), "{r}");
            assert_eq!(fs.support_of(&r.antecedent), Some(r.antecedent_support));
            assert!(r.confidence() <= 1.0 && r.confidence() > 0.0);
        }
    }

    #[test]
    fn superset_pruning_is_sound() {
        // Compare level-wise pruned generation against naive full
        // enumeration on a random-ish closed set.
        let fs: FrequentSet = [
            (iset(&[0]), 20),
            (iset(&[1]), 15),
            (iset(&[2]), 12),
            (iset(&[3]), 18),
            (iset(&[0, 1]), 10),
            (iset(&[0, 2]), 9),
            (iset(&[0, 3]), 14),
            (iset(&[1, 2]), 8),
            (iset(&[1, 3]), 9),
            (iset(&[2, 3]), 8),
            (iset(&[0, 1, 2]), 7),
            (iset(&[0, 1, 3]), 8),
            (iset(&[0, 2, 3]), 7),
            (iset(&[1, 2, 3]), 6),
            (iset(&[0, 1, 2, 3]), 5),
        ]
        .into_iter()
        .collect();
        for conf in [0.0, 0.3, 0.5, 0.62, 0.8, 1.0] {
            let fast = generate(&fs, conf);
            let naive = naive_generate(&fs, conf);
            assert_eq!(fast.len(), naive.len(), "conf {conf}");
            for r in &fast {
                assert!(
                    naive
                        .iter()
                        .any(|n| n.antecedent == r.antecedent && n.consequent == r.consequent),
                    "missing {r} at conf {conf}"
                );
            }
        }
    }

    fn naive_generate(fs: &FrequentSet, min_conf: f64) -> Vec<Rule> {
        let mut out = Vec::new();
        for (x, xs) in fs.iter() {
            if x.len() < 2 {
                continue;
            }
            // all non-empty proper subsets as consequents
            for k in 1..x.len() {
                for y in x.k_subsets(k) {
                    let a = x.difference(&y);
                    let asup = fs.support_of(&a).unwrap();
                    if xs as f64 / asup as f64 >= min_conf {
                        out.push(Rule {
                            antecedent: a,
                            consequent: y.clone(),
                            support: xs,
                            antecedent_support: asup,
                            consequent_support: fs.support_of(&y).unwrap(),
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn lift_and_fractions() {
        let rules = generate(&small(), 0.5);
        let r = &rules[0];
        // {2}=>{1}: conf 0.8; base rate of {1} = 10/20 → lift 1.6
        assert!((r.lift(20) - 1.6).abs() < 1e-12);
        assert!((r.support_fraction(20) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn leverage_and_conviction_hand_computed() {
        // n = 10, sup({1}) = 6, sup({2}) = 5, sup({1,2}) = 4.
        let fs: FrequentSet = [(iset(&[1]), 6), (iset(&[2]), 5), (iset(&[1, 2]), 4)]
            .into_iter()
            .collect();
        let rules = generate(&fs, 0.0);
        let r = rules
            .iter()
            .find(|r| r.antecedent == iset(&[1]))
            .expect("{1} => {2}");
        // confidence = 4/6 = 2/3
        assert!((r.confidence() - 2.0 / 3.0).abs() < 1e-12);
        // leverage = 4/10 − (6/10)(5/10) = 0.4 − 0.3 = 0.1
        assert!((r.leverage(10) - 0.1).abs() < 1e-12, "{}", r.leverage(10));
        // conviction = (1 − 5/10) / (1 − 2/3) = 0.5 / (1/3) = 1.5
        assert!(
            (r.conviction(10) - 1.5).abs() < 1e-12,
            "{}",
            r.conviction(10)
        );

        // The mirror rule {2} => {1}: conf 4/5, leverage is symmetric,
        // conviction = (1 − 6/10) / (1 − 4/5) = 0.4 / 0.2 = 2.0.
        let m = rules
            .iter()
            .find(|r| r.antecedent == iset(&[2]))
            .expect("{2} => {1}");
        assert!((m.leverage(10) - 0.1).abs() < 1e-12);
        assert!((m.conviction(10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conviction_is_infinite_for_exact_rules() {
        // {2} always implies {1}: sup({2}) = sup({1,2}) = 4 → conf 1.
        let fs: FrequentSet = [(iset(&[1]), 8), (iset(&[2]), 4), (iset(&[1, 2]), 4)]
            .into_iter()
            .collect();
        let rules = generate(&fs, 0.9);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].confidence(), 1.0);
        assert!(rules[0].conviction(10).is_infinite());
        // An independent rule has conviction 1 and leverage 0:
        // n = 10, sup({1}) = 5, sup({2}) = 4, sup({1,2}) = 2 → conf 0.4.
        let ind: FrequentSet = [(iset(&[1]), 5), (iset(&[2]), 4), (iset(&[1, 2]), 2)]
            .into_iter()
            .collect();
        let r = generate(&ind, 0.0);
        let r = r.iter().find(|r| r.antecedent == iset(&[1])).unwrap();
        assert!((r.conviction(10) - 1.0).abs() < 1e-12);
        assert!(r.leverage(10).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "downward-closed")]
    fn missing_subset_panics() {
        let fs: FrequentSet = [(iset(&[1, 2]), 4), (iset(&[1]), 10)].into_iter().collect();
        generate(&fs, 0.0);
    }

    #[test]
    fn empty_and_singleton_only_sets_yield_no_rules() {
        assert!(generate(&FrequentSet::new(), 0.0).is_empty());
        let singles: FrequentSet = [(iset(&[1]), 5)].into_iter().collect();
        assert!(generate(&singles, 0.0).is_empty());
    }

    #[test]
    fn display_format() {
        let rules = generate(&small(), 0.5);
        let s = format!("{}", rules[0]);
        assert!(s.contains("=>"), "{s}");
        assert!(s.contains("confidence 0.800"), "{s}");
    }

    #[test]
    fn end_to_end_with_eclat() {
        let db = apriori::reference::random_db(5, 200, 12, 6);
        let minsup = mining_types::MinSupport::from_percent(5.0);
        let mut meter = mining_types::OpMeter::new();
        let fs = eclat::sequential::mine_with(
            &db,
            minsup,
            &eclat::EclatConfig::with_singletons(),
            &mut meter,
        );
        let rules = generate(&fs, 0.6);
        for r in &rules {
            assert!(r.confidence() >= 0.6);
            // spot-check against direct counting
            let count = db
                .iter()
                .filter(|(_, t)| {
                    r.antecedent.is_subset_of_sorted(t) && r.consequent.is_subset_of_sorted(t)
                })
                .count() as u32;
            assert_eq!(count, r.support, "{r}");
        }
    }
}
