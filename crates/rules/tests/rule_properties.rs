//! Property-based tests of rule generation against a naive enumerator,
//! over arbitrary downward-closed frequent sets built from random
//! databases (so supports are always realizable).

use apriori::reference::{brute_force, random_db};
use assoc_rules::generate;
use mining_types::{FrequentSet, MinSupport};
use proptest::prelude::*;

fn naive(fs: &FrequentSet, min_conf: f64) -> Vec<(mining_types::Itemset, mining_types::Itemset)> {
    let mut out = Vec::new();
    for (x, xs) in fs.iter() {
        if x.len() < 2 {
            continue;
        }
        for k in 1..x.len() {
            for y in x.k_subsets(k) {
                let a = x.difference(&y);
                let asup = fs.support_of(&a).unwrap();
                if xs as f64 / asup as f64 >= min_conf {
                    out.push((a, y));
                }
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fast_generation_equals_naive_enumeration(
        seed in 0u64..500,
        pct in 8.0f64..40.0,
        conf in 0.05f64..0.95,
    ) {
        let db = random_db(seed, 100, 10, 5);
        let fs = brute_force(&db, MinSupport::from_percent(pct));
        let fast: Vec<_> = generate(&fs, conf)
            .into_iter()
            .map(|r| (r.antecedent, r.consequent))
            .collect();
        let mut fast_sorted = fast.clone();
        fast_sorted.sort();
        prop_assert_eq!(fast_sorted, naive(&fs, conf));
    }

    #[test]
    fn confidence_monotone_in_threshold(seed in 0u64..200, pct in 10.0f64..30.0) {
        let db = random_db(seed, 80, 10, 5);
        let fs = brute_force(&db, MinSupport::from_percent(pct));
        let lo = generate(&fs, 0.2);
        let hi = generate(&fs, 0.7);
        prop_assert!(hi.len() <= lo.len());
        for r in &hi {
            prop_assert!(
                lo.iter().any(|l| l.antecedent == r.antecedent && l.consequent == r.consequent),
                "rule lost when lowering the threshold"
            );
        }
    }

    #[test]
    fn rule_statistics_are_consistent(seed in 0u64..200, conf in 0.1f64..0.9) {
        let db = random_db(seed, 120, 10, 5);
        let n = db.num_transactions();
        let fs = brute_force(&db, MinSupport::from_percent(10.0));
        for r in generate(&fs, conf) {
            prop_assert!(r.confidence() >= conf && r.confidence() <= 1.0 + 1e-12);
            prop_assert!(r.support <= r.antecedent_support);
            prop_assert!(r.support <= r.consequent_support);
            prop_assert!(r.lift(n) > 0.0);
            prop_assert!(r.support_fraction(n) <= 1.0);
            prop_assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
            // antecedent and consequent are disjoint
            prop_assert!(r.antecedent.difference(&r.consequent) == r.antecedent);
        }
    }
}
