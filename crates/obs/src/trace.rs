//! Span/event tracer: per-thread ring buffers behind one atomic flag.
//!
//! # Recording model
//!
//! * [`enabled`] is a process-global `AtomicBool`. Every instrumentation
//!   point ([`span`], [`instant`]) loads it once (relaxed) and returns
//!   immediately when tracing is off — the disabled fast path is a load
//!   plus a branch, with no allocation, no lock, and no clock read.
//! * When enabled, an event is pushed into the calling thread's own ring
//!   buffer (a `thread_local` registered in a process-global list so it
//!   can be drained after the thread exits). A full ring drops its
//!   **oldest** event and counts the drop; overflow never corrupts or
//!   reallocates.
//! * Timestamps are microseconds on the monotonic clock, relative to a
//!   process-global epoch taken on first use. The epoch also captures a
//!   wall-clock anchor (`unix_us`) so traces from different processes of
//!   the same run can be merged onto one timeline.
//! * [`set_identity`] tags the process with the distributed run id and
//!   worker rank ([`COORDINATOR_RANK`] for the coordinator); both are
//!   stamped into every drained record.
//!
//! # On-disk format
//!
//! [`render_jsonl`] drains every ring into line-oriented JSON:
//!
//! ```text
//! {"type":"meta","schema_version":1,"run_id":"0x1d","pid":0,"unix_us":...}
//! {"type":"event","ph":"B","t_us":12,"pid":0,"tid":0,"name":"init","arg":0}
//! {"type":"event","ph":"E","t_us":480,"pid":0,"tid":0,"name":"init","arg":0}
//! {"type":"event","ph":"I","t_us":501,"pid":0,"tid":1,"name":"spill:write","arg":4096}
//! {"type":"dropped","pid":0,"tid":1,"dropped_events":17}
//! ```
//!
//! `pid` is the *logical* process id — the worker rank, or
//! [`COORDINATOR_RANK`] — not the OS pid, so merged timelines read as
//! cluster topology. [`merge_jsonl`] concatenates files from several
//! processes, rebases each file's timestamps onto the earliest wall-clock
//! anchor, and emits one monotonic timeline; [`validate_jsonl`] checks
//! schema keys, span nesting, timestamp monotonicity, and run-id
//! consistency; [`chrome_trace`] converts to the Chrome `trace_event`
//! JSON that `chrome://tracing` / Perfetto load directly.

use mining_types::json::{parse, Obj, Value};
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime};

/// Bump when the JSONL record layout changes.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// The logical process id used by the coordinator (workers use their
/// rank, `0..num_workers`).
pub const COORDINATOR_RANK: u32 = u32::MAX;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static RUN_ID: AtomicU64 = AtomicU64::new(0);
static RANK: AtomicU32 = AtomicU32::new(COORDINATOR_RANK);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Is tracing on? One relaxed atomic load — the whole disabled cost.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off process-wide. Enabling also pins the
/// monotonic/wall-clock epoch pair used for cross-process merging.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Set the ring capacity used by threads that have not recorded yet
/// (existing rings keep their size). Mostly for tests.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// Tag this process with the distributed run id and worker rank; both
/// are stamped into every drained record.
pub fn set_identity(run_id: u64, rank: u32) {
    RUN_ID.store(run_id, Ordering::Relaxed);
    RANK.store(rank, Ordering::Relaxed);
}

/// The current `(run_id, rank)` identity.
pub fn identity() -> (u64, u32) {
    (RUN_ID.load(Ordering::Relaxed), RANK.load(Ordering::Relaxed))
}

fn epoch() -> &'static (Instant, u64) {
    EPOCH.get_or_init(|| {
        let unix_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), unix_us)
    })
}

fn now_us() -> u64 {
    epoch().0.elapsed().as_micros() as u64
}

/// Event phase, mirroring the Chrome `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span entry (`"B"`).
    Begin,
    /// Span exit (`"E"`).
    End,
    /// A point event (`"I"`).
    Instant,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
        }
    }
}

/// One recorded event (name is static so recording never allocates).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Microseconds since the process trace epoch.
    pub t_us: u64,
    /// Recording thread (small per-process integer).
    pub tid: u32,
    /// Begin / end / instant.
    pub ph: Phase,
    /// Event name (span name for begin/end).
    pub name: &'static str,
    /// One free-form numeric payload (bytes, class id, …).
    pub arg: u64,
}

struct Ring {
    tid: u32,
    cap: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

thread_local! {
    static LOCAL: std::cell::RefCell<Option<Arc<Mutex<Ring>>>> =
        const { std::cell::RefCell::new(None) };
}

fn record(ph: Phase, name: &'static str, arg: u64) {
    let t_us = now_us();
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                cap: RING_CAPACITY.load(Ordering::Relaxed),
                buf: VecDeque::new(),
                dropped: 0,
            }));
            REGISTRY
                .lock()
                .expect("trace registry")
                .push(Arc::clone(&ring));
            ring
        });
        let mut ring = ring.lock().expect("trace ring");
        if ring.buf.len() >= ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        let tid = ring.tid;
        ring.buf.push_back(Event {
            t_us,
            tid,
            ph,
            name,
            arg,
        });
    });
}

/// RAII span guard: records `B` on creation (when tracing is enabled)
/// and the matching `E` on drop.
#[must_use = "a span ends when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(Phase::End, self.name, 0);
        }
    }
}

/// Open a span. Disabled cost: one atomic load and a branch.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    record(Phase::Begin, name, 0);
    SpanGuard { name, armed: true }
}

/// Open a span carrying a numeric payload on its begin event.
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    record(Phase::Begin, name, arg);
    SpanGuard { name, armed: true }
}

/// Record a point event.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    record(Phase::Instant, name, arg);
}

/// Everything drained from the rings (events sorted by time).
#[derive(Debug, Default)]
pub struct Drained {
    /// All events, ordered by `(t_us, tid)`.
    pub events: Vec<Event>,
    /// `(tid, count)` for every ring that overflowed since the last
    /// drain.
    pub dropped: Vec<(u32, u64)>,
}

/// Drain every thread's ring buffer (clearing them) into one
/// time-ordered batch. Rings of threads that already exited are
/// included.
pub fn drain() -> Drained {
    let mut out = Drained::default();
    let registry = REGISTRY.lock().expect("trace registry");
    for ring in registry.iter() {
        let mut ring = ring.lock().expect("trace ring");
        out.events.extend(ring.buf.drain(..));
        if ring.dropped > 0 {
            out.dropped.push((ring.tid, ring.dropped));
            ring.dropped = 0;
        }
    }
    drop(registry);
    out.events.sort_by_key(|e| (e.t_us, e.tid));
    out.dropped.sort_unstable();
    out
}

fn meta_line(run_id: u64, pid: u32, unix_us: u64) -> String {
    Obj::new()
        .str("type", "meta")
        .u64("schema_version", TRACE_SCHEMA_VERSION)
        .str("run_id", &format!("{run_id:#x}"))
        .u64("pid", pid as u64)
        .u64("unix_us", unix_us)
        .finish()
}

fn event_line(e: &Event, pid: u32) -> String {
    Obj::new()
        .str("type", "event")
        .str("ph", e.ph.as_str())
        .u64("t_us", e.t_us)
        .u64("pid", pid as u64)
        .u64("tid", e.tid as u64)
        .str("name", e.name)
        .u64("arg", e.arg)
        .finish()
}

fn dropped_line(pid: u32, tid: u32, dropped: u64) -> String {
    Obj::new()
        .str("type", "dropped")
        .u64("pid", pid as u64)
        .u64("tid", tid as u64)
        .u64("dropped_events", dropped)
        .finish()
}

/// Drain the rings and render the batch as JSONL (meta line first, then
/// time-ordered events, then one `dropped` marker per overflowed ring).
pub fn render_jsonl() -> String {
    let (run_id, pid) = identity();
    let unix_us = epoch().1;
    let drained = drain();
    let mut out = String::new();
    out.push_str(&meta_line(run_id, pid, unix_us));
    out.push('\n');
    for e in &drained.events {
        out.push_str(&event_line(e, pid));
        out.push('\n');
    }
    for &(tid, dropped) in &drained.dropped {
        out.push_str(&dropped_line(pid, tid, dropped));
        out.push('\n');
    }
    out
}

/// Drain to `path`, truncating any previous contents.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_file(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, render_jsonl())
}

/// Drain and append to `path` (one `write` call, so concurrent readers
/// see whole batches), creating the file if needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn append_file(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(render_jsonl().as_bytes())
}

// ---------------------------------------------------------------------
// Reading side: merge, validate, convert.
// ---------------------------------------------------------------------

struct ParsedLine {
    value: Value,
    line_no: usize,
}

fn parse_lines(text: &str) -> Result<Vec<ParsedLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        out.push(ParsedLine {
            value,
            line_no: i + 1,
        });
    }
    Ok(out)
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_num).map(|n| n as u64)
}

/// Merge trace JSONL documents from several processes of one run into a
/// single monotonic timeline: each document's events are rebased from
/// its own monotonic epoch onto the earliest wall-clock anchor, then
/// globally sorted. Meta lines are kept (one per source), `dropped`
/// markers are carried through.
///
/// # Errors
/// Any malformed line, a document without a meta line, or mixed run ids.
pub fn merge_jsonl(docs: &[String]) -> Result<String, String> {
    struct Doc {
        lines: Vec<ParsedLine>,
        unix_us: u64,
    }
    let mut parsed = Vec::new();
    for (n, text) in docs.iter().enumerate() {
        let lines = parse_lines(text).map_err(|e| format!("input {}: {e}", n + 1))?;
        let meta = lines
            .iter()
            .find(|l| l.value.get("type").and_then(Value::as_str) == Some("meta"))
            .ok_or_else(|| format!("input {}: no meta line", n + 1))?;
        let unix_us = field_u64(&meta.value, "unix_us")
            .ok_or_else(|| format!("input {}: meta line lacks unix_us", n + 1))?;
        parsed.push(Doc { lines, unix_us });
    }
    let base_us = parsed.iter().map(|d| d.unix_us).min().unwrap_or(0);

    let mut metas: Vec<String> = Vec::new();
    let mut events: Vec<(u64, u64, u64, String)> = Vec::new(); // (t, pid, tid, line)
    let mut dropped: Vec<String> = Vec::new();
    let mut run_ids: Vec<String> = Vec::new();
    for doc in &parsed {
        let offset = doc.unix_us - base_us;
        for l in &doc.lines {
            match l.value.get("type").and_then(Value::as_str) {
                Some("meta") => {
                    if let Some(rid) = l.value.get("run_id").and_then(Value::as_str) {
                        run_ids.push(rid.to_string());
                    }
                    metas.push(render_value(&l.value));
                }
                Some("event") => {
                    let t = field_u64(&l.value, "t_us")
                        .ok_or_else(|| format!("line {}: event lacks t_us", l.line_no))?
                        + offset;
                    let pid = field_u64(&l.value, "pid").unwrap_or(0);
                    let tid = field_u64(&l.value, "tid").unwrap_or(0);
                    let mut v = l.value.clone();
                    set_num(&mut v, "t_us", t);
                    events.push((t, pid, tid, render_value(&v)));
                }
                Some("dropped") => dropped.push(render_value(&l.value)),
                other => return Err(format!("line {}: unknown record type {other:?}", l.line_no)),
            }
        }
    }
    if let Some(first) = run_ids.first() {
        if let Some(bad) = run_ids.iter().find(|r| *r != first) {
            return Err(format!("mixed run ids: {first} vs {bad}"));
        }
    }
    events.sort_by_key(|e| (e.0, e.1, e.2));

    let mut out = String::new();
    for m in metas {
        out.push_str(&m);
        out.push('\n');
    }
    for (_, _, _, line) in events {
        out.push_str(&line);
        out.push('\n');
    }
    for d in dropped {
        out.push_str(&d);
        out.push('\n');
    }
    Ok(out)
}

fn set_num(v: &mut Value, key: &str, n: u64) {
    if let Value::Obj(fields) = v {
        for (k, val) in fields.iter_mut() {
            if k == key {
                *val = Value::Num(n as f64);
            }
        }
    }
}

/// Re-render a parsed record with the writer (stable key order is the
/// parser's document order, which the writer produced in the first
/// place).
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                mining_types::json::number(*n)
            }
        }
        Value::Str(s) => format!("\"{}\"", mining_types::json::escape(s)),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", mining_types::json::escape(k), render_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// What [`validate_jsonl`] learned about a trace document.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Meta lines (one per merged source process).
    pub processes: usize,
    /// Event records.
    pub events: usize,
    /// Matched begin/end pairs.
    pub spans: usize,
    /// Instant records.
    pub instants: usize,
    /// Total events dropped to ring overflow.
    pub dropped: u64,
    /// The (single) run id.
    pub run_id: String,
    /// Distinct logical process ids, sorted.
    pub pids: Vec<u64>,
    /// Distinct event names, sorted.
    pub names: Vec<String>,
}

const META_KEYS: &[&str] = &["pid", "run_id", "schema_version", "type", "unix_us"];
const EVENT_KEYS: &[&str] = &["arg", "name", "ph", "pid", "t_us", "tid", "type"];
const DROPPED_KEYS: &[&str] = &["dropped_events", "pid", "tid", "type"];

fn check_keys(v: &Value, want: &[&str], line_no: usize) -> Result<(), String> {
    if let Value::Obj(fields) = v {
        let mut got: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        got.sort_unstable();
        if got != want {
            return Err(format!(
                "line {line_no}: keys {got:?} do not match schema {want:?}"
            ));
        }
        Ok(())
    } else {
        Err(format!("line {line_no}: record is not an object"))
    }
}

/// Validate a trace JSONL document (single-process or merged): every
/// line parses, record keys match the schema exactly, timestamps are
/// monotone non-decreasing, spans nest properly per `(pid, tid)` (every
/// end matches its begin, nothing left open), and all meta lines agree
/// on one run id. Nesting violations are tolerated — reported in the
/// summary but not fatal — when the document records dropped events,
/// since overflow legitimately loses begin markers.
///
/// # Errors
/// A message naming the first offending line.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let lines = parse_lines(text)?;
    if lines.is_empty() {
        return Err("empty trace".to_string());
    }
    let mut summary = TraceSummary::default();
    let mut run_ids: Vec<String> = Vec::new();
    let mut pids = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    let mut last_t = 0u64;
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut nesting_errors: Vec<String> = Vec::new();

    for l in &lines {
        match l.value.get("type").and_then(Value::as_str) {
            Some("meta") => {
                check_keys(&l.value, META_KEYS, l.line_no)?;
                let version = field_u64(&l.value, "schema_version").unwrap_or(0);
                if version != TRACE_SCHEMA_VERSION {
                    return Err(format!(
                        "line {}: schema_version {version} (expected {TRACE_SCHEMA_VERSION})",
                        l.line_no
                    ));
                }
                let rid = l
                    .value
                    .get("run_id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: run_id must be a string", l.line_no))?;
                run_ids.push(rid.to_string());
                summary.processes += 1;
            }
            Some("event") => {
                check_keys(&l.value, EVENT_KEYS, l.line_no)?;
                let t = field_u64(&l.value, "t_us").unwrap_or(0);
                if t < last_t {
                    return Err(format!(
                        "line {}: t_us {t} goes backwards (previous {last_t})",
                        l.line_no
                    ));
                }
                last_t = t;
                let pid = field_u64(&l.value, "pid").unwrap_or(0);
                let tid = field_u64(&l.value, "tid").unwrap_or(0);
                let name = l
                    .value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                pids.insert(pid);
                names.insert(name.clone());
                summary.events += 1;
                match l.value.get("ph").and_then(Value::as_str) {
                    Some("B") => stacks.entry((pid, tid)).or_default().push(name),
                    Some("E") => {
                        let stack = stacks.entry((pid, tid)).or_default();
                        match stack.pop() {
                            Some(open) if open == name => summary.spans += 1,
                            Some(open) => nesting_errors.push(format!(
                                "line {}: end of '{name}' while '{open}' is open",
                                l.line_no
                            )),
                            None => nesting_errors.push(format!(
                                "line {}: end of '{name}' with no open span",
                                l.line_no
                            )),
                        }
                    }
                    Some("I") => summary.instants += 1,
                    other => {
                        return Err(format!("line {}: bad ph {other:?}", l.line_no));
                    }
                }
            }
            Some("dropped") => {
                check_keys(&l.value, DROPPED_KEYS, l.line_no)?;
                summary.dropped += field_u64(&l.value, "dropped_events").unwrap_or(0);
            }
            other => return Err(format!("line {}: unknown record type {other:?}", l.line_no)),
        }
    }

    match run_ids.first() {
        None => return Err("no meta line".to_string()),
        Some(first) => {
            if let Some(bad) = run_ids.iter().find(|r| *r != first) {
                return Err(format!("mixed run ids: {first} vs {bad}"));
            }
            summary.run_id = first.clone();
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            nesting_errors.push(format!("span '{open}' on pid {pid} tid {tid} never ended"));
        }
    }
    if !nesting_errors.is_empty() && summary.dropped == 0 {
        return Err(nesting_errors.remove(0));
    }
    summary.pids = pids.into_iter().collect();
    summary.names = names.into_iter().collect();
    Ok(summary)
}

/// Convert a (single or merged) trace JSONL document into Chrome
/// `trace_event` JSON — load the result in `chrome://tracing` or
/// Perfetto. Each logical pid gets a `process_name` metadata record
/// (`coordinator` / `worker-N`).
///
/// # Errors
/// Any malformed line.
pub fn chrome_trace(text: &str) -> Result<String, String> {
    let lines = parse_lines(text)?;
    let mut events = mining_types::json::Arr::new();
    let mut named: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for l in &lines {
        match l.value.get("type").and_then(Value::as_str) {
            Some("meta") => {
                let pid = field_u64(&l.value, "pid").unwrap_or(0);
                if named.insert(pid) {
                    let label = if pid == COORDINATOR_RANK as u64 {
                        "coordinator".to_string()
                    } else {
                        format!("worker-{pid}")
                    };
                    events.raw(
                        &Obj::new()
                            .str("name", "process_name")
                            .str("ph", "M")
                            .u64("pid", pid)
                            .u64("tid", 0)
                            .raw("args", &Obj::new().str("name", &label).finish())
                            .finish(),
                    );
                }
            }
            Some("event") => {
                let ph = l.value.get("ph").and_then(Value::as_str).unwrap_or("I");
                let mut obj = Obj::new()
                    .str(
                        "name",
                        l.value.get("name").and_then(Value::as_str).unwrap_or(""),
                    )
                    .str("cat", "eclat")
                    .str("ph", if ph == "I" { "i" } else { ph })
                    .u64("ts", field_u64(&l.value, "t_us").unwrap_or(0))
                    .u64("pid", field_u64(&l.value, "pid").unwrap_or(0))
                    .u64("tid", field_u64(&l.value, "tid").unwrap_or(0));
                if ph == "I" {
                    obj = obj.str("s", "t");
                }
                events.raw(
                    &obj.raw(
                        "args",
                        &Obj::new()
                            .u64("arg", field_u64(&l.value, "arg").unwrap_or(0))
                            .finish(),
                    )
                    .finish(),
                );
            }
            Some("dropped") => {
                events.raw(
                    &Obj::new()
                        .str("name", "dropped_events")
                        .str("cat", "eclat")
                        .str("ph", "i")
                        .u64("ts", 0)
                        .u64("pid", field_u64(&l.value, "pid").unwrap_or(0))
                        .u64("tid", field_u64(&l.value, "tid").unwrap_or(0))
                        .str("s", "t")
                        .raw(
                            "args",
                            &Obj::new()
                                .u64("arg", field_u64(&l.value, "dropped_events").unwrap_or(0))
                                .finish(),
                        )
                        .finish(),
                );
            }
            _ => return Err(format!("line {}: unknown record type", l.line_no)),
        }
    }
    Ok(Obj::new()
        .raw("traceEvents", &events.finish())
        .str("displayTimeUnit", "ms")
        .finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global state; serialize the tests that
    // touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn reset() {
        set_enabled(false);
        let _ = drain();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_identity(0, COORDINATOR_RANK);
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = locked();
        reset();
        {
            let _s = span("quiet");
            instant("quiet-point", 1);
        }
        assert!(drain().events.is_empty());
    }

    #[test]
    fn spans_nest_and_roundtrip_through_jsonl() {
        let _guard = locked();
        reset();
        set_identity(0x2a, 3);
        set_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span_arg("inner", 7);
            }
            instant("mark", 42);
        }
        set_enabled(false);
        let doc = render_jsonl();
        let summary = validate_jsonl(&doc).expect("valid trace");
        assert_eq!(summary.processes, 1);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.dropped, 0);
        assert_eq!(summary.run_id, "0x2a");
        assert_eq!(summary.pids, vec![3]);
        assert_eq!(
            summary.names,
            vec!["inner".to_string(), "mark".to_string(), "outer".to_string()]
        );
        reset();
    }

    #[test]
    fn overflow_drops_oldest_with_marker() {
        let _guard = locked();
        reset();
        set_ring_capacity(4);
        set_enabled(true);
        // A fresh thread gets a fresh ring at the small capacity.
        std::thread::spawn(|| {
            for i in 0..10u64 {
                instant("tick", i);
            }
        })
        .join()
        .unwrap();
        set_enabled(false);
        let doc = render_jsonl();
        let summary = validate_jsonl(&doc).expect("overflowed trace still validates");
        assert_eq!(summary.events, 4, "ring keeps the newest events");
        assert_eq!(summary.dropped, 6, "oldest six were dropped and counted");
        assert!(doc.contains("\"dropped_events\":6"), "{doc}");
        // The survivors are the newest (largest args).
        assert!(doc.contains("\"arg\":9"), "{doc}");
        assert!(!doc.contains("\"arg\":0}"), "{doc}");
        reset();
    }

    #[test]
    fn unbalanced_spans_fail_validation_unless_overflowed() {
        let bad = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x1\",\"pid\":0,\"unix_us\":5}\n",
            "{\"type\":\"event\",\"ph\":\"B\",\"t_us\":1,\"pid\":0,\"tid\":0,\"name\":\"a\",\"arg\":0}\n",
        );
        let err = validate_jsonl(bad).unwrap_err();
        assert!(err.contains("never ended"), "{err}");

        let mismatched = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x1\",\"pid\":0,\"unix_us\":5}\n",
            "{\"type\":\"event\",\"ph\":\"E\",\"t_us\":1,\"pid\":0,\"tid\":0,\"name\":\"a\",\"arg\":0}\n",
        );
        let err = validate_jsonl(mismatched).unwrap_err();
        assert!(err.contains("no open span"), "{err}");
    }

    #[test]
    fn validation_rejects_drift_and_disorder() {
        let missing_key = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x1\",\"pid\":0,\"unix_us\":5}\n",
            "{\"type\":\"event\",\"ph\":\"I\",\"t_us\":1,\"pid\":0,\"name\":\"a\",\"arg\":0}\n",
        );
        assert!(validate_jsonl(missing_key).unwrap_err().contains("schema"));

        let backwards = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x1\",\"pid\":0,\"unix_us\":5}\n",
            "{\"type\":\"event\",\"ph\":\"I\",\"t_us\":9,\"pid\":0,\"tid\":0,\"name\":\"a\",\"arg\":0}\n",
            "{\"type\":\"event\",\"ph\":\"I\",\"t_us\":3,\"pid\":0,\"tid\":0,\"name\":\"a\",\"arg\":0}\n",
        );
        assert!(validate_jsonl(backwards).unwrap_err().contains("backwards"));

        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn merge_rebases_onto_one_monotonic_timeline() {
        let a = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x7\",\"pid\":0,\"unix_us\":1000}\n",
            "{\"type\":\"event\",\"ph\":\"B\",\"t_us\":0,\"pid\":0,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
            "{\"type\":\"event\",\"ph\":\"E\",\"t_us\":50,\"pid\":0,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
        )
        .to_string();
        let b = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x7\",\"pid\":1,\"unix_us\":1020}\n",
            "{\"type\":\"event\",\"ph\":\"B\",\"t_us\":0,\"pid\":1,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
            "{\"type\":\"event\",\"ph\":\"E\",\"t_us\":10,\"pid\":1,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
        )
        .to_string();
        let merged = merge_jsonl(&[a, b]).expect("merge");
        let summary = validate_jsonl(&merged).expect("merged trace validates");
        assert_eq!(summary.processes, 2);
        assert_eq!(summary.pids, vec![0, 1]);
        assert_eq!(summary.spans, 2);
        // Process b's events were rebased by +20us.
        assert!(merged.contains("\"t_us\":20"), "{merged}");
        assert!(merged.contains("\"t_us\":30"), "{merged}");
    }

    #[test]
    fn merge_rejects_mixed_run_ids() {
        let a =
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x7\",\"pid\":0,\"unix_us\":0}\n"
                .to_string();
        let b =
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x8\",\"pid\":1,\"unix_us\":0}\n"
                .to_string();
        assert!(merge_jsonl(&[a, b]).unwrap_err().contains("mixed run ids"));
    }

    #[test]
    fn chrome_conversion_labels_processes() {
        let doc = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"run_id\":\"0x7\",\"pid\":4294967295,\"unix_us\":0}\n",
            "{\"type\":\"event\",\"ph\":\"B\",\"t_us\":1,\"pid\":4294967295,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
            "{\"type\":\"event\",\"ph\":\"E\",\"t_us\":2,\"pid\":4294967295,\"tid\":0,\"name\":\"init\",\"arg\":0}\n",
            "{\"type\":\"event\",\"ph\":\"I\",\"t_us\":3,\"pid\":4294967295,\"tid\":0,\"name\":\"m\",\"arg\":5}\n",
            "{\"type\":\"dropped\",\"pid\":4294967295,\"tid\":0,\"dropped_events\":2}\n",
        );
        let chrome = chrome_trace(doc).expect("convert");
        let v = parse(&chrome).expect("chrome output is JSON");
        match v.get("traceEvents") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 5),
            other => panic!("{other:?}"),
        }
        assert!(chrome.contains("\"name\":\"coordinator\""), "{chrome}");
        assert!(chrome.contains("\"ph\":\"i\""), "{chrome}");
    }

    #[test]
    fn disabled_fast_path_is_cheap() {
        let _guard = locked();
        reset();
        // 1M disabled instrumentation points must run in well under a
        // second even unoptimized — the disabled path is one relaxed
        // load and a branch. Generous bound to stay CI-noise-proof.
        let t0 = Instant::now();
        for i in 0..1_000_000u64 {
            let _s = span("off");
            instant("off-point", i);
        }
        let took = t0.elapsed();
        assert!(drain().events.is_empty());
        assert!(
            took < std::time::Duration::from_secs(2),
            "disabled tracing cost {took:?} for 2M probe points"
        );
    }
}
