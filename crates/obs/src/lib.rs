//! `eclat-obs` — the observability substrate for the Eclat reproduction.
//!
//! Three small, zero-third-party-dependency facilities, shared by the
//! mining core, the distributed runtime, the serving layer, and the CLI:
//!
//! * [`trace`] — a low-overhead span/event tracer. Every participating
//!   thread records into its own ring buffer; recording is guarded by a
//!   single process-global atomic flag, so with tracing disabled an
//!   instrumentation point costs one relaxed load and a branch (the
//!   `disabled_fast_path_is_cheap` test and the `ablations` bench row pin
//!   this). Buffers drain to a line-oriented JSONL format that merges
//!   across processes (worker rank + run id tags) and converts to Chrome
//!   `trace_event` JSON via `eclat trace`.
//! * [`metrics`] — counters, gauges, and log-bucketed latency histograms
//!   behind a name-keyed [`metrics::Registry`] that renders
//!   Prometheus-style text. The serving layer exposes this over the wire
//!   as the `Metrics` query.
//! * [`log`] — a leveled stderr logger configured by `ECLAT_LOG`
//!   (`error|warn|info|debug`, default `warn`), so fleet runs are quiet
//!   by default and debuggable on demand.
//!
//! The crate deliberately depends only on `mining-types` (for the
//! workspace's hand-rolled JSON reader/writer); it must stay buildable
//! offline and cheap enough to link everywhere.

pub mod log;
pub mod metrics;
pub mod trace;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{SpanGuard, TraceSummary, COORDINATOR_RANK, TRACE_SCHEMA_VERSION};
