//! Leveled stderr logger configured by `ECLAT_LOG`.
//!
//! ```text
//! ECLAT_LOG=debug eclat dmine --spawn-local 2 ...
//! ```
//!
//! Levels are `error < warn < info < debug`; the default is `warn`, so
//! fleet runs are quiet unless something is wrong. The macros
//! ([`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info), [`log_debug!`](crate::log_debug))
//! build `format_args!` lazily — a suppressed message costs one atomic
//! load plus a branch, never a formatting pass.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the run cannot ignore.
    Error = 1,
    /// Something unexpected but survivable (the default threshold).
    Warn = 2,
    /// Progress / lifecycle messages.
    Info = 3,
    /// Chatty diagnostics.
    Debug = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 0 = not yet initialized from the environment.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let from_env = std::env::var("ECLAT_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Warn);
    MAX_LEVEL.store(from_env as u8, Ordering::Relaxed);
    from_env as u8
}

/// Override the threshold programmatically (wins over `ECLAT_LOG`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Would a message at `level` be emitted?
#[inline]
pub fn level_enabled(level: Level) -> bool {
    (level as u8) <= max_level()
}

/// Emit one message (used via the `log_*!` macros).
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    eprintln!("[{} {target}] {args}", level.as_str());
}

/// Log at [`Level::Error`]: `log_error!("eclat-net", "lost {r}", r = rank)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_and_ordering() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("noise"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn threshold_gates_levels() {
        set_level(Level::Info);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_level(Level::Error);
        assert!(!level_enabled(Level::Warn));
        // Macros compile and are callable at any level.
        crate::log_debug!("obs-test", "suppressed {}", 1);
        crate::log_error!("obs-test", "visible only on stderr");
        set_level(Level::Warn);
    }
}
