//! Metrics registry: counters, gauges, and log-bucketed latency
//! histograms, rendered as Prometheus-style exposition text.
//!
//! All metrics are lock-free atomics; the registry itself is a
//! name-keyed map behind a mutex that is touched only at registration
//! and render time. Labels are embedded in the metric name
//! (`requests_total{query="support"}`), matching Prometheus text syntax,
//! and histograms render as summaries with `quantile` labels so the
//! output needs no client-side bucket math.
//!
//! Histograms bucket by logarithm with four sub-buckets per octave
//! (relative quantization error ≤ 12.5 %), which keeps the per-histogram
//! footprint at 256 words while making quantile estimates sharp enough
//! to compare against exactly-measured client-side percentiles (the
//! `servload` bench does exactly that, with a 20 % disagreement flag).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. For counters that mirror an externally
    /// accumulated total (synced at snapshot time), not for hot paths.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up or down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets: 0–3 exact, then four sub-buckets per power of two.
pub const HISTOGRAM_BUCKETS: usize = 256;

/// A log-bucketed histogram of nanosecond observations.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let sub = ((v >> (e - 2)) & 3) as usize;
    (4 + (e - 2) * 4 + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Midpoint of a bucket's value range, the quantile estimate it yields.
fn bucket_mid(idx: usize) -> f64 {
    if idx < 4 {
        return idx as f64;
    }
    let e = (idx - 4) / 4 + 2;
    let sub = (idx - 4) % 4;
    let lo = (4 + sub as u64) << (e - 2);
    let width = 1u64 << (e - 2);
    lo as f64 + width as f64 / 2.0
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one nanosecond observation.
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds; `0.0`
    /// when empty. Error is bounded by the bucket width (≤ 12.5 %
    /// relative).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(idx);
            }
        }
        bucket_mid(HISTOGRAM_BUCKETS - 1)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        }
    }
}

/// A name-keyed collection of metrics that renders Prometheus text.
///
/// Labels ride inside the name: `requests_total{query="support"}`. All
/// metrics sharing the text before `{` form one family and get a single
/// `# TYPE` header.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// The quantiles rendered for each histogram.
pub const RENDERED_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Render every metric as Prometheus-style exposition text, sorted
    /// by name. Histograms render as summaries: `quantile`-labelled
    /// rows in seconds plus `_sum` / `_count`.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry");
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, metric) in inner.iter() {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {}\n", metric.kind()));
                last_family = family.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    for q in RENDERED_QUANTILES {
                        out.push_str(&format!(
                            "{} {}\n",
                            with_label(name, "quantile", &format!("{q}")),
                            fmt_secs(h.quantile_ns(q) / 1e9)
                        ));
                    }
                    out.push_str(&format!(
                        "{} {}\n",
                        suffixed(name, "_sum"),
                        fmt_secs(h.sum_ns() as f64 / 1e9)
                    ));
                    out.push_str(&format!("{} {}\n", suffixed(name, "_count"), h.count()));
                }
            }
        }
        out
    }
}

fn fmt_secs(v: f64) -> String {
    // Enough digits for nanosecond latencies, without float noise.
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Add (or extend) the label set embedded in `name`.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Append a suffix to the metric base name, before any label set.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(at) => format!("{}{}{}", &name[..at], suffix, &name[at..]),
        None => format!("{name}{suffix}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("reqs_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("reqs_total").get(), 5, "get-or-create shares");
        let g = r.gauge("generation");
        g.set(3);
        assert_eq!(g.get(), 3);
        c.store(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn bucket_layout_is_monotone_and_tight() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index must be monotone at {v}");
            last = b;
            if v >= 4 {
                let mid = bucket_mid(b);
                let rel = (mid - v as f64).abs() / v as f64;
                assert!(rel <= 0.125, "value {v} bucket mid {mid}: rel err {rel}");
            }
        }
    }

    #[test]
    fn quantiles_track_observations() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe_ns(1_000);
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!((p50 - 1_000.0).abs() / 1_000.0 <= 0.125, "p50 {p50}");
        assert!(
            (p99 - 1_000_000.0).abs() / 1_000_000.0 <= 0.125,
            "p99 {p99}"
        );
        assert_eq!(h.quantile_ns(0.0), h.quantile_ns(0.001));
        let empty = Histogram::new();
        assert_eq!(empty.quantile_ns(0.5), 0.0);
    }

    #[test]
    fn render_groups_families_and_labels() {
        let r = Registry::new();
        r.counter("eclat_requests_total{query=\"ping\"}").inc();
        r.counter("eclat_requests_total{query=\"support\"}").add(2);
        r.gauge("eclat_generation").set(1);
        let h = r.histogram("eclat_latency_seconds{query=\"support\"}");
        h.observe_ns(2_000_000); // 2ms
        let text = r.render();
        assert!(
            text.contains("# TYPE eclat_requests_total counter"),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE eclat_requests_total").count(),
            1,
            "one header per family: {text}"
        );
        assert!(
            text.contains("eclat_requests_total{query=\"support\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE eclat_latency_seconds summary"),
            "{text}"
        );
        // A single 2 ms observation lands in the bucket whose midpoint
        // is 1.96608 ms (≤ 12.5 % quantization).
        assert!(
            text.contains("eclat_latency_seconds{query=\"support\",quantile=\"0.5\"} 0.0019"),
            "{text}"
        );
        assert!(
            text.contains("eclat_latency_seconds_count{query=\"support\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE eclat_generation gauge"), "{text}");
    }
}
