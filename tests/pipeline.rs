//! End-to-end pipeline: generate → serialize → partition → transform →
//! mine → rules — the full life of a database through the public API.

use dbstore::{binfmt, BlockPartition, HorizontalDb, VerticalDb};
use mining_types::{MinSupport, OpMeter};
use questgen::{DatabaseStats, QuestGenerator, QuestParams};

#[test]
fn generate_serialize_mine_rules() {
    // 1. Generate.
    let params = QuestParams::tiny(4_000, 77);
    let txns = QuestGenerator::new(params).generate_all();
    let db = HorizontalDb::from_transactions(txns);
    let stats = DatabaseStats::measure(&db.iter().map(|(_, t)| t.to_vec()).collect::<Vec<_>>());
    assert_eq!(stats.num_transactions, 4_000);

    // 2. Serialize horizontally, read back, verify byte-for-byte equality.
    let mut buf = Vec::new();
    let written = binfmt::write_horizontal(&db, &mut buf).unwrap();
    assert_eq!(written as usize, buf.len());
    let (db2, read) = binfmt::read_horizontal(&mut buf.as_slice()).unwrap();
    assert_eq!(read, written);
    assert_eq!(db, db2);

    // 3. Vertical transformation round trip, including the partitioned
    //    path (what the cluster transformation does).
    let whole = VerticalDb::from_horizontal(&db);
    let partition = BlockPartition::equal_blocks(db.num_transactions(), 4);
    let parts: Vec<VerticalDb> = partition
        .iter()
        .map(|(_, r)| VerticalDb::from_horizontal_range(&db, r))
        .collect();
    let merged = dbstore::vertical::merge_partitions(&parts);
    assert_eq!(merged, whole);
    let mut vbuf = Vec::new();
    binfmt::write_vertical(&whole, &mut vbuf).unwrap();
    let (whole2, _) = binfmt::read_vertical(&mut vbuf.as_slice()).unwrap();
    assert_eq!(whole2, whole);

    // 4. Mine (with singletons so rules can be generated).
    let minsup = MinSupport::from_percent(1.5);
    let mut meter = OpMeter::new();
    let frequent = eclat::sequential::mine_with(
        &db2,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );
    assert!(frequent.max_size() >= 2);

    // 5. Rules, each verified by direct counting.
    let rules = assoc_rules::generate(&frequent, 0.5);
    assert!(!rules.is_empty());
    for r in rules.iter().take(50) {
        assert!(r.confidence() >= 0.5);
        let both = db
            .iter()
            .filter(|(_, t)| {
                r.antecedent.is_subset_of_sorted(t) && r.consequent.is_subset_of_sorted(t)
            })
            .count() as u32;
        assert_eq!(both, r.support, "{r}");
        let ante = db
            .iter()
            .filter(|(_, t)| r.antecedent.is_subset_of_sorted(t))
            .count() as u32;
        assert_eq!(ante, r.antecedent_support, "{r}");
    }
}

#[test]
fn item_support_from_vertical_equals_horizontal_count() {
    let params = QuestParams::tiny(1_000, 9);
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let vert = VerticalDb::from_horizontal(&db);
    for (item, list) in vert.iter() {
        let direct = db
            .iter()
            .filter(|(_, t)| t.binary_search(&item).is_ok())
            .count() as u32;
        assert_eq!(list.support(), direct, "{item:?}");
    }
}

#[test]
fn partitioned_mining_block_structure() {
    // Verify the §6.3 property the whole transformation phase rests on:
    // per-block partial tid-lists concatenated in block order equal the
    // global list, for 2-itemsets (not just single items).
    let params = QuestParams::tiny(2_000, 13);
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let minsup = MinSupport::from_percent(2.0);
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut m = OpMeter::new();
    let tri = eclat::transform::count_pairs(&db, 0..db.num_transactions(), &mut m);
    let l2: Vec<_> = tri
        .frequent_pairs(threshold)
        .map(|(a, b, _)| (a, b))
        .collect();
    assert!(!l2.is_empty());
    let idx = eclat::transform::index_pairs(&l2);
    let global = eclat::transform::build_pair_tidlists(&db, 0..db.num_transactions(), &idx, &mut m);

    let partition = BlockPartition::equal_blocks(db.num_transactions(), 5);
    let mut stitched = vec![tidlist::TidList::new(); l2.len()];
    for (_, range) in partition.iter() {
        let part = eclat::transform::build_pair_tidlists(&db, range, &idx, &mut m);
        for (slot, partial) in part.into_iter().enumerate() {
            stitched[slot].append_partial(&partial);
        }
    }
    assert_eq!(stitched, global);
}
