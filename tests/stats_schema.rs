//! Golden tests for the structured mining-stats layer: the JSON emitted
//! by [`mining_types::MiningStats::to_json`] is byte-stable for a fixed
//! report, its key set (the schema fingerprint) is pinned, and every
//! execution variant — sequential, rayon-parallel, simulated cluster,
//! and hybrid — fills the *same* schema with the same counters.
//!
//! The serving-stats document ([`assoc_serve::ServeStats`]) and the
//! trace JSONL records ([`eclat_obs::trace`]) are pinned here too —
//! they are wire surfaces with their own schema versions.
//!
//! `scripts/check.sh` runs this file explicitly: schema drift (adding,
//! renaming, or dropping a key) fails here first, and the fix is to bump
//! [`mining_types::stats::SCHEMA_VERSION`] (or the serve/trace
//! counterpart) and update the pinned lists.

use assoc_serve::stats::SERVE_SCHEMA_VERSION;
use assoc_serve::{CacheStats, QueryStat, ServeStats, ServerCounters};
use dbstore::HorizontalDb;
use eclat::EclatConfig;
use memchannel::{ClusterConfig, CostModel};
use mining_types::json::collect_keys;
use mining_types::stats::{
    ClassStats, ClusterStats, KernelStats, MiningStats, PhaseStats, ProcStats, SCHEMA_VERSION,
};
use mining_types::{MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};

/// Every key a live (non-simulated) run emits, sorted as
/// [`collect_keys`] returns them.
const LIVE_KEYS: &[&str] = &[
    "algorithm",
    "cand_gen",
    "candidates",
    "classes",
    "cluster",
    "frequent",
    "hash_probe",
    "infrequent",
    "joins",
    "kernel",
    "label",
    "levels",
    "members",
    "num_frequent",
    "ops",
    "pair_incr",
    "peak_tid_bytes",
    "phases",
    "prefix",
    "record",
    "representation",
    "schema_version",
    "secs",
    "short_circuit_hits",
    "size",
    "subsets_gen",
    "switch_events",
    "threshold",
    "tid_cmp",
    "total",
    "total_ops",
    "transactions",
    "variant",
];

/// Keys the simulated-cluster timeline adds on top of [`LIVE_KEYS`].
const CLUSTER_ONLY_KEYS: &[&str] = &[
    "bytes_received",
    "bytes_sent",
    "compute_secs",
    "disk_secs",
    "finish_secs",
    "idle_secs",
    "load_imbalance",
    "net_secs",
    "proc",
    "procs",
    "total_secs",
];

fn sorted_union(a: &[&str], b: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = a.iter().chain(b).map(|s| s.to_string()).collect();
    v.sort();
    v
}

fn quest_db(d: usize, seed: u64) -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::tiny(d, seed)).generate_all())
}

/// A fully hand-built report: every field deterministic, so the emitted
/// JSON can be pinned byte for byte.
fn fixture() -> MiningStats {
    let mut s = MiningStats::new("eclat", "sequential", "tidlist");
    s.transactions = 4;
    s.threshold = 2;
    s.num_frequent = 3;
    s.total_ops = OpMeter {
        tid_cmp: 5,
        pair_incr: 6,
        cand_gen: 2,
        record: 3,
        ..OpMeter::default()
    };
    s.phases.push(PhaseStats {
        label: "init".to_string(),
        secs: 0.25,
        ops: OpMeter {
            pair_incr: 6,
            ..OpMeter::default()
        },
    });
    s.record_level(2, 6, 2);
    let mut k = KernelStats::new();
    k.record_candidate(3);
    k.record_frequent(3);
    k.observe_level_bytes(64);
    s.add_class(ClassStats {
        prefix: vec![1],
        members: 2,
        kernel: k,
    });
    s.cluster = Some(ClusterStats {
        total_secs: 2.5,
        load_imbalance: 1.25,
        procs: vec![ProcStats {
            proc: 0,
            compute_secs: 1.5,
            disk_secs: 0.5,
            net_secs: 0.25,
            idle_secs: 0.25,
            finish_secs: 2.5,
            bytes_sent: 128,
            bytes_received: 64,
        }],
    });
    s
}

#[test]
fn golden_json_for_hand_built_report() {
    let expected = concat!(
        "{\"schema_version\":1,\"algorithm\":\"eclat\",\"variant\":\"sequential\",",
        "\"representation\":\"tidlist\",\"transactions\":4,\"threshold\":2,",
        "\"num_frequent\":3,",
        "\"total_ops\":{\"tid_cmp\":5,\"hash_probe\":0,\"pair_incr\":6,",
        "\"subsets_gen\":0,\"cand_gen\":2,\"record\":3,\"total\":16},",
        "\"phases\":[{\"label\":\"init\",\"secs\":0.25,",
        "\"ops\":{\"tid_cmp\":0,\"hash_probe\":0,\"pair_incr\":6,",
        "\"subsets_gen\":0,\"cand_gen\":0,\"record\":0,\"total\":6}}],",
        "\"levels\":[{\"size\":2,\"candidates\":6,\"frequent\":2},",
        "{\"size\":3,\"candidates\":1,\"frequent\":1}],",
        "\"kernel\":{\"joins\":1,\"frequent\":1,\"infrequent\":0,",
        "\"short_circuit_hits\":0,\"peak_tid_bytes\":64,\"switch_events\":0,",
        "\"levels\":[{\"size\":3,\"candidates\":1,\"frequent\":1}]},",
        "\"classes\":[{\"prefix\":[1],\"members\":2,",
        "\"kernel\":{\"joins\":1,\"frequent\":1,\"infrequent\":0,",
        "\"short_circuit_hits\":0,\"peak_tid_bytes\":64,\"switch_events\":0,",
        "\"levels\":[{\"size\":3,\"candidates\":1,\"frequent\":1}]}}],",
        "\"cluster\":{\"total_secs\":2.5,\"load_imbalance\":1.25,",
        "\"procs\":[{\"proc\":0,\"compute_secs\":1.5,\"disk_secs\":0.5,",
        "\"net_secs\":0.25,\"idle_secs\":0.25,\"finish_secs\":2.5,",
        "\"bytes_sent\":128,\"bytes_received\":64}]}}",
    );
    assert_eq!(fixture().to_json(true), expected);
    // with_classes=false must only empty the classes array — losing
    // exactly the per-class-entry keys, nothing else
    let lean = fixture().to_json(false);
    assert!(lean.contains("\"classes\":[],"));
    let full_minus_entries: Vec<String> = collect_keys(&fixture().to_json(true))
        .into_iter()
        .filter(|k| k != "prefix" && k != "members")
        .collect();
    assert_eq!(collect_keys(&lean), full_minus_entries);
}

#[test]
fn fixture_covers_the_whole_schema() {
    // The fixture must exercise every key, or the golden test would pin
    // less than the full schema.
    assert_eq!(
        collect_keys(&fixture().to_json(true)),
        sorted_union(LIVE_KEYS, CLUSTER_ONLY_KEYS)
    );
}

#[test]
fn live_run_schema_is_pinned() {
    let db = quest_db(1_500, 7);
    let minsup = MinSupport::from_percent(1.0);
    let cfg = EclatConfig::default();
    let (_, stats) = eclat::sequential::mine_stats(&db, minsup, &cfg, &mut OpMeter::new());
    assert!(!stats.classes.is_empty(), "fixture too small: no classes");
    assert!(stats.levels.len() >= 2, "fixture too small: pairs only");
    let json = stats.to_json(true);
    assert!(json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")));
    assert!(json.ends_with("\"cluster\":null}"));
    assert_eq!(
        collect_keys(&json),
        LIVE_KEYS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "live-run schema drifted: update the pinned key list and bump \
         SCHEMA_VERSION"
    );
}

#[test]
fn simulated_run_schema_is_pinned() {
    let db = quest_db(1_500, 7);
    let minsup = MinSupport::from_percent(1.0);
    let cost = CostModel::dec_alpha_1997();
    let topo = ClusterConfig::new(2, 2);
    let rep = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
    assert!(rep.stats.cluster.is_some());
    assert_eq!(
        collect_keys(&rep.stats.to_json(true)),
        sorted_union(LIVE_KEYS, CLUSTER_ONLY_KEYS),
        "simulated-run schema drifted: update the pinned key lists and \
         bump SCHEMA_VERSION"
    );
}

#[test]
fn measured_dist_run_schema_is_pinned() {
    // A real loopback run with hybrid workers (2 hosts x 2 threads,
    // budget 0 so every class crosses the out-of-core store) fills the
    // same schema as the simulated cluster: per-thread processor rows
    // reuse the simulator's timeline keys, nothing more, nothing less.
    let db = quest_db(1_500, 7);
    let minsup = MinSupport::from_percent(1.0);
    let workers: Vec<_> = (0..2)
        .map(|_| {
            eclat_net::start_worker(&eclat_net::WorkerConfig {
                threads: 2,
                mem_budget: Some(0),
                ..eclat_net::WorkerConfig::default()
            })
            .expect("start worker")
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let report = eclat_net::mine_distributed(&db, minsup, &addrs, &Default::default())
        .expect("loopback dist run");
    let cluster = report.stats.cluster.as_ref().expect("dist cluster section");
    assert_eq!(cluster.procs.len(), 4, "one row per worker thread");
    assert_eq!(
        collect_keys(&report.stats.to_json(true)),
        sorted_union(LIVE_KEYS, CLUSTER_ONLY_KEYS),
        "measured-dist schema drifted: update the pinned key lists and \
         bump SCHEMA_VERSION"
    );
}

#[test]
fn all_variants_share_the_schema() {
    let db = quest_db(1_500, 7);
    let minsup = MinSupport::from_percent(1.0);
    let cfg = EclatConfig::default();
    let cost = CostModel::dec_alpha_1997();
    let topo = ClusterConfig::new(2, 2);

    let (_, seq) = eclat::sequential::mine_stats(&db, minsup, &cfg, &mut OpMeter::new());
    let (_, par) = eclat::parallel::mine_stats(&db, minsup, &cfg, &mut OpMeter::new());
    let cluster = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg).stats;
    let hybrid = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg).stats;

    let seq_keys = collect_keys(&seq.to_json(true));
    assert_eq!(seq_keys, collect_keys(&par.to_json(true)));
    let cluster_keys = collect_keys(&cluster.to_json(true));
    assert_eq!(cluster_keys, collect_keys(&hybrid.to_json(true)));
    // The simulated variants extend the live schema by exactly the
    // cluster-timeline keys.
    assert_eq!(
        cluster_keys,
        sorted_union(
            &seq_keys.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            CLUSTER_ONLY_KEYS
        )
    );
}

/// Keys the `eclat seq` stats artifact ([`eclat_seq::SeqStats`]) adds
/// on top of [`LIVE_KEYS`]: the database profile, the `by_len` result
/// rows, and the embedded `"mining"` report.
const SEQ_ONLY_KEYS: &[&str] = &[
    "by_len",
    "distinct_items",
    "events",
    "item_occurrences",
    "len",
    "maxlen",
    "mining",
    "patterns",
    "sequences",
];

#[test]
fn seq_stats_schema_is_pinned() {
    use eclat_seq::{mine_stats, SeqConfig, SeqDb, SEQ_SCHEMA_VERSION};
    use questgen::{SeqGenerator, SeqParams};

    let db = SeqDb::from_events(SeqGenerator::new(SeqParams::tiny(150, 7)).generate_all_raw());
    let cfg = SeqConfig::default();
    let (fs, mining) = mine_stats(
        &db,
        MinSupport::from_percent(20.0),
        &cfg,
        &mut OpMeter::new(),
        &eclat::pipeline::Serial,
        "sequential",
    );
    assert!(!mining.classes.is_empty(), "fixture too small: no classes");
    let stats = eclat_seq::SeqStats::from_run(&db, &cfg, &fs, mining);
    assert!(
        stats.by_len.len() >= 3,
        "fixture too small: need 3+ pattern lengths"
    );
    let json = stats.to_json();
    assert!(json.starts_with(&format!(
        "{{\"schema_version\":{SEQ_SCHEMA_VERSION},\"algorithm\":\"spade\","
    )));
    assert_eq!(
        collect_keys(&json),
        sorted_union(LIVE_KEYS, SEQ_ONLY_KEYS),
        "seq-stats schema drifted: update the pinned key list and bump \
         SEQ_SCHEMA_VERSION"
    );
}

/// Every key the serving-stats JSON emits with both the `server` and
/// per-query-kind `queries` sections populated, sorted as
/// [`collect_keys`] returns them.
const SERVE_KEYS: &[&str] = &[
    "cache",
    "capacity",
    "connections",
    "count",
    "entries",
    "evictions",
    "generation",
    "hit_rate",
    "hits",
    "insertions",
    "itemsets",
    "misses",
    "num_transactions",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "protocol_errors",
    "queries",
    "query",
    "reloads",
    "requests",
    "rules",
    "schema_version",
    "server",
    "shards",
    "timeouts",
    "trie_nodes",
    "value_bytes",
    "workers",
];

#[test]
fn serve_stats_schema_is_pinned() {
    let stats = ServeStats {
        generation: 1,
        reloads: 1,
        shards: 4,
        itemsets: 200,
        rules: 50,
        trie_nodes: 300,
        num_transactions: 1_000,
        cache: CacheStats {
            capacity: 64,
            entries: 8,
            value_bytes: 512,
            hits: 7,
            misses: 1,
            insertions: 1,
            evictions: 0,
        },
        server: Some(ServerCounters {
            connections: 2,
            requests: 9,
            protocol_errors: 0,
            timeouts: 0,
            workers: 4,
        }),
        queries: Some(vec![QueryStat {
            query: "all".to_string(),
            count: 9,
            p50_ms: 0.5,
            p90_ms: 1.0,
            p99_ms: 2.0,
        }]),
    };
    let json = stats.to_json();
    assert!(json.starts_with(&format!("{{\"schema_version\":{SERVE_SCHEMA_VERSION},")));
    assert_eq!(
        collect_keys(&json),
        SERVE_KEYS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "serve-stats schema drifted: update the pinned key list and bump \
         SERVE_SCHEMA_VERSION"
    );
}

/// Every key the streaming-stats JSON emits, sorted as [`collect_keys`]
/// returns them.
const STREAM_KEYS: &[&str] = &[
    "algorithm",
    "batch",
    "batch_size",
    "batches",
    "changed_pairs",
    "classes_born",
    "classes_carried",
    "classes_dirty",
    "classes_dropped",
    "classes_total",
    "delta_secs",
    "dirty_bound",
    "dirty_fraction",
    "generation",
    "ingest_secs",
    "itemsets",
    "merge_secs",
    "remine_secs",
    "representation",
    "rules",
    "schema_version",
    "threshold",
    "total_transactions",
    "transactions",
    "variant",
];

#[test]
fn stream_stats_schema_is_pinned() {
    use eclat_stream::{StreamEngine, StreamStats, STREAM_SCHEMA_VERSION};

    let db = quest_db(600, 7);
    let mut engine = StreamEngine::new(
        db.num_items(),
        MinSupport::from_percent(1.0),
        0.5,
        EclatConfig::default(),
    );
    let mut run = StreamStats {
        representation: "tidlist".to_string(),
        batch_size: 300,
        ..StreamStats::default()
    };
    let txns: Vec<Vec<mining_types::ItemId>> = db.iter().map(|(_, t)| t.to_vec()).collect();
    for chunk in txns.chunks(300) {
        run.push(engine.ingest_batch(chunk, &eclat::pipeline::Serial));
    }
    assert_eq!(run.batches.len(), 2, "fixture too small: one batch");
    let json = run.to_json();
    assert!(json.starts_with(&format!("{{\"schema_version\":{STREAM_SCHEMA_VERSION},")));
    assert_eq!(
        collect_keys(&json),
        STREAM_KEYS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        "stream-stats schema drifted: update the pinned key list and bump \
         STREAM_SCHEMA_VERSION"
    );
}

#[test]
fn trace_jsonl_schema_is_pinned() {
    use eclat_obs::trace;

    const META_KEYS: &[&str] = &["pid", "run_id", "schema_version", "type", "unix_us"];
    const EVENT_KEYS: &[&str] = &["arg", "name", "ph", "pid", "t_us", "tid", "type"];
    const DROPPED_KEYS: &[&str] = &["dropped_events", "pid", "tid", "type"];
    let pin = |keys: &[&str]| keys.iter().map(|s| s.to_string()).collect::<Vec<_>>();

    // A 4-slot ring guarantees an overflow marker; libtest gives this
    // test its own thread, so the shrunken capacity applies to a fresh
    // ring and the drain below owns every event this thread recorded.
    trace::set_ring_capacity(4);
    trace::set_identity(0x5EED, 3);
    trace::set_enabled(true);
    {
        let _outer = trace::span("outer");
        let _inner = trace::span_arg("inner", 7);
        for i in 0..16 {
            trace::instant("tick", i);
        }
    }
    trace::set_enabled(false);
    let doc = trace::render_jsonl();
    trace::set_ring_capacity(trace::DEFAULT_RING_CAPACITY);

    let lines: Vec<&str> = doc.lines().collect();
    assert!(lines.len() >= 3, "expected meta + events + dropped: {doc}");
    assert_eq!(collect_keys(lines[0]), pin(META_KEYS), "meta drifted");
    assert!(lines[0].contains("\"run_id\":\"0x5eed\""), "{}", lines[0]);
    assert!(lines[0].contains("\"pid\":3,"), "{}", lines[0]);
    let (mut events, mut dropped) = (0usize, 0usize);
    for line in &lines[1..] {
        if line.starts_with("{\"type\":\"event\"") {
            assert_eq!(collect_keys(line), pin(EVENT_KEYS), "event drifted: {line}");
            events += 1;
        } else if line.starts_with("{\"type\":\"dropped\"") {
            assert_eq!(
                collect_keys(line),
                pin(DROPPED_KEYS),
                "dropped drifted: {line}"
            );
            dropped += 1;
        } else {
            panic!("unknown trace record type: {line}");
        }
    }
    assert!(events > 0, "no event lines in {doc}");
    assert!(dropped > 0, "ring overflow left no dropped marker in {doc}");
    let summary = trace::validate_jsonl(&doc).expect("rendered trace must validate");
    assert_eq!(summary.run_id, "0x5eed");
    assert!(summary.dropped > 0);
}

#[test]
fn parallel_stats_match_sequential() {
    let db = quest_db(2_000, 11);
    let minsup = MinSupport::from_percent(1.0);
    let cfg = EclatConfig::default();
    let mut m_seq = OpMeter::new();
    let mut m_par = OpMeter::new();
    let (fs_seq, seq) = eclat::sequential::mine_stats(&db, minsup, &cfg, &mut m_seq);
    let (fs_par, par) = eclat::parallel::mine_stats(&db, minsup, &cfg, &mut m_par);

    assert_eq!(fs_seq, fs_par);
    assert_eq!(seq.num_frequent, par.num_frequent);
    assert_eq!(seq.total_ops, par.total_ops);
    assert_eq!(seq.levels, par.levels);
    assert_eq!(seq.classes, par.classes);
    assert_eq!(seq.kernel_totals(), par.kernel_totals());
    // Only the wall-clock seconds may differ between the two.
    let zero_secs = |s: &MiningStats| {
        s.phases
            .iter()
            .map(|p| PhaseStats {
                label: p.label.clone(),
                secs: 0.0,
                ops: p.ops,
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(zero_secs(&seq), zero_secs(&par));
}
