//! Property-based cross-algorithm checks on arbitrary small databases:
//! brute force == Apriori == Eclat (seq, rayon, cluster) for any input
//! and any support.

use apriori::reference::brute_force;
use dbstore::HorizontalDb;
use eclat::{EclatConfig, Representation};
use memchannel::{ClusterConfig, CostModel};
use mining_types::{FrequentSet, ItemId, MinSupport, OpMeter};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = HorizontalDb> {
    // up to 60 transactions over up to 12 items
    proptest::collection::vec(proptest::collection::vec(0u32..12, 1..8), 1..60).prop_map(|raw| {
        let txns: Vec<Vec<ItemId>> = raw
            .into_iter()
            .map(|t| t.into_iter().map(ItemId).collect())
            .collect();
        HorizontalDb::from_transactions(txns).with_num_items(12)
    })
}

fn strip_singletons(fs: &FrequentSet) -> FrequentSet {
    fs.iter()
        .filter(|(is, _)| is.len() >= 2)
        .map(|(is, s)| (is.clone(), s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn miners_match_brute_force(db in arb_db(), pct in 2.0f64..60.0) {
        let minsup = MinSupport::from_percent(pct);
        let truth = brute_force(&db, minsup);
        prop_assert_eq!(truth.closure_violation(), None);

        let ap = apriori::mine(&db, minsup);
        prop_assert_eq!(&ap, &truth);

        let ec = eclat::sequential::mine(&db, minsup);
        prop_assert_eq!(&ec, &strip_singletons(&truth));

        let par = eclat::parallel::mine(&db, minsup);
        prop_assert_eq!(&par, &ec);
    }

    #[test]
    fn cluster_variants_match_sequential(db in arb_db(), pct in 5.0f64..50.0, hosts in 1usize..4, ppn in 1usize..4) {
        let minsup = MinSupport::from_percent(pct);
        let topo = ClusterConfig::new(hosts, ppn);
        let cost = CostModel::dec_alpha_1997();
        let reference = eclat::sequential::mine(&db, minsup);

        let cl = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
        prop_assert_eq!(&cl.frequent, &reference);
        prop_assert!(cl.total_secs() >= 0.0);

        let hy = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &Default::default());
        prop_assert_eq!(&hy.frequent, &reference);

        let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
        prop_assert_eq!(strip_singletons(&cd.frequent), reference);
    }

    #[test]
    fn representations_match_tidlist_eclat(db in arb_db(), pct in 2.0f64..60.0, depth in 0u32..4) {
        // Golden equivalence across the Representation knob: diffsets,
        // the depth-switching AdaptiveSet, bitmaps, and the density
        // selector must reproduce the tid-list result exactly, on every
        // execution variant. `depth * 250` doubles as a permille sweep
        // (0, 250, 500, 750) so auto-density hits mixed splits.
        let minsup = MinSupport::from_percent(pct);
        let reference = eclat::sequential::mine(&db, minsup);
        let topo = ClusterConfig::new(2, 2);
        let cost = CostModel::dec_alpha_1997();
        for repr in [
            Representation::Diffset,
            Representation::AutoSwitch { depth },
            Representation::Bitmap,
            Representation::AutoDensity { permille: depth * 250 },
        ] {
            let cfg = EclatConfig::with_representation(repr);
            let seq = eclat::sequential::mine_with(&db, minsup, &cfg, &mut OpMeter::new());
            prop_assert_eq!(&seq, &reference, "sequential {:?}", repr);
            let par = eclat::parallel::mine_with(&db, minsup, &cfg, &mut OpMeter::new());
            prop_assert_eq!(&par, &reference, "parallel {:?}", repr);
            let cl = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg);
            prop_assert_eq!(&cl.frequent, &reference, "cluster {:?}", repr);
            let hy = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg);
            prop_assert_eq!(&hy.frequent, &reference, "hybrid {:?}", repr);
            let cq = eclat::clique::mine_with(&db, minsup, &cfg, &mut OpMeter::new());
            prop_assert_eq!(&cq, &reference, "clique {:?}", repr);
        }
    }

    #[test]
    fn maximal_matches_oracle(db in arb_db(), pct in 2.0f64..60.0, depth in 0u32..4) {
        // MaxEclat's representation-aware look-ahead must equal the
        // subsumption filter over the full frequent set, for every
        // TidSet representation and with the short-circuit both on/off.
        let minsup = MinSupport::from_percent(pct);
        let oracle = eclat::maximal::maximal_of(&eclat::sequential::mine(&db, minsup));
        for repr in [
            Representation::TidList,
            Representation::Diffset,
            Representation::AutoSwitch { depth },
            Representation::Bitmap,
            Representation::AutoDensity { permille: depth * 250 },
        ] {
            for short_circuit in [true, false] {
                let cfg = EclatConfig {
                    short_circuit,
                    ..EclatConfig::with_representation(repr)
                };
                let got = eclat::maximal::mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new());
                prop_assert_eq!(&got, &oracle, "{:?} sc={}", repr, short_circuit);
            }
        }
    }

    #[test]
    fn rules_are_internally_consistent(db in arb_db(), pct in 10.0f64..50.0, conf in 0.1f64..0.9) {
        let minsup = MinSupport::from_percent(pct);
        let truth = brute_force(&db, minsup);
        let rules = assoc_rules::generate(&truth, conf);
        for r in rules {
            prop_assert!(r.confidence() >= conf);
            prop_assert!(r.support <= r.antecedent_support);
            prop_assert!(r.support <= r.consequent_support);
            let x = r.antecedent.union(&r.consequent);
            prop_assert_eq!(truth.support_of(&x), Some(r.support));
        }
    }
}
