//! Golden replay harness for the incremental mining engine: streaming a
//! database batch-by-batch through [`eclat_stream::StreamEngine`] must
//! leave *exactly* the state a full re-mine of the prefix produces —
//! same itemsets, same supports, same rules — after **every** batch, for
//! every tid-set representation. Equality is checked on the serialized
//! results snapshot (generation equalized), so the two paths are pinned
//! byte for byte all the way through the storage layer.

use dbstore::{binfmt, HorizontalDb};
use eclat::pipeline::{ExecutionPolicy, FixedThreads, Rayon, Serial};
use eclat::{EclatConfig, Representation};
use eclat_stream::{MinedState, StreamEngine};
use mining_types::{ItemId, MinSupport};
use proptest::prelude::*;
use questgen::{QuestGenerator, QuestParams};

const ALL_REPRESENTATIONS: [Representation; 5] = [
    Representation::TidList,
    Representation::Diffset,
    Representation::AutoSwitch { depth: 2 },
    Representation::Bitmap,
    Representation::AutoDensity {
        permille: eclat::DEFAULT_DENSITY_PERMILLE,
    },
];

/// Serialize a mined state with its generation forced to zero, so
/// incremental and from-scratch states compare on content alone (the
/// generation counter is the *only* intended difference).
fn snapshot_bytes(state: &MinedState) -> Vec<u8> {
    let mut snap = state.to_snapshot();
    snap.generation = 0;
    let mut buf = Vec::new();
    binfmt::write_results(&snap, &mut buf).expect("serialize to memory");
    buf
}

/// Replay `txns` through the engine in batches of `splits[i % len]`
/// transactions and assert byte-identity with the full re-mine of every
/// prefix. Returns the number of batches ingested.
fn assert_replay_matches_full<P: ExecutionPolicy>(
    txns: &[Vec<ItemId>],
    splits: &[usize],
    minsup: MinSupport,
    confidence: f64,
    repr: Representation,
    policy: &P,
) -> usize {
    assert!(splits.iter().all(|&k| k > 0));
    let cfg = EclatConfig::with_representation(repr);
    let num_items = txns
        .iter()
        .flat_map(|t| t.iter().map(|i| i.0 + 1))
        .max()
        .unwrap_or(0);
    let mut engine = StreamEngine::new(num_items, minsup, confidence, cfg.clone());
    let mut at = 0;
    let mut batches = 0;
    while at < txns.len() {
        let end = (at + splits[batches % splits.len()]).min(txns.len());
        let stats = engine.ingest_batch(&txns[at..end], policy);
        assert!(
            stats.classes_dirty <= stats.dirty_bound,
            "{repr:?}: pair-granular dirty set exceeded the item-granular bound"
        );
        at = end;
        batches += 1;

        let prefix = HorizontalDb::from_transactions(txns[..at].to_vec());
        let full = MinedState::full_mine(&prefix, minsup, confidence, &cfg);
        assert_eq!(
            engine.state().frequent,
            full.frequent,
            "{repr:?}: frequent sets diverged after batch {batches} ({at} txns)"
        );
        assert_eq!(
            engine.state().rules,
            full.rules,
            "{repr:?}: rules diverged after batch {batches}"
        );
        assert_eq!(
            snapshot_bytes(engine.state()),
            snapshot_bytes(&full),
            "{repr:?}: serialized snapshots diverged after batch {batches}"
        );
    }
    batches
}

/// The deterministic golden stream: a questgen database replayed in K
/// batches, checked after every batch, across all five representations.
#[test]
fn replay_matches_full_remine_across_representations() {
    let txns = QuestGenerator::new(QuestParams::tiny(800, 42)).generate_all();
    for repr in ALL_REPRESENTATIONS {
        let batches = assert_replay_matches_full(
            &txns,
            &[200],
            MinSupport::from_percent(3.0),
            0.5,
            repr,
            &Serial,
        );
        assert_eq!(batches, 4);
    }
}

/// A rising fractional threshold crosses the support border in both
/// directions mid-stream: ceil(25% · n) climbs from 50 to 200 across
/// the replay, so pairs frequent in the early prefix die without losing
/// a tid while batch-local patterns are born. Uneven batch sizes make
/// sure the threshold moves on every ingest.
#[test]
fn replay_survives_border_crossings_both_directions() {
    let txns = QuestGenerator::new(QuestParams::tiny(800, 1097)).generate_all();
    for repr in ALL_REPRESENTATIONS {
        assert_replay_matches_full(
            &txns,
            &[200, 50, 350, 120],
            MinSupport::from_percent(25.0),
            0.3,
            repr,
            &Serial,
        );
    }
}

/// The re-mine phase goes through the same `ExecutionPolicy` surface as
/// the batch pipeline — threaded policies must replay identically.
#[test]
fn replay_is_policy_independent() {
    let txns = QuestGenerator::new(QuestParams::tiny(600, 7)).generate_all();
    let minsup = MinSupport::from_percent(1.5);
    assert_replay_matches_full(&txns, &[150], minsup, 0.5, Representation::TidList, &Rayon);
    assert_replay_matches_full(
        &txns,
        &[150],
        minsup,
        0.5,
        Representation::Diffset,
        &FixedThreads::new(3),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary databases, arbitrary batch splits, and a support
    /// fraction high enough that the absolute threshold moves with
    /// nearly every batch — border crossings in both directions are the
    /// norm here, not the exception. Every representation takes a turn.
    #[test]
    fn incremental_equals_full_for_arbitrary_splits(
        raw in proptest::collection::vec(proptest::collection::vec(0u32..10, 0..6), 1..40),
        splits in proptest::collection::vec(1usize..8, 1..6),
        pct in 5.0f64..60.0,
        conf in 0.1f64..0.9,
        repr_ix in 0usize..5,
    ) {
        let txns: Vec<Vec<ItemId>> = raw
            .into_iter()
            .map(|t| t.into_iter().map(ItemId).collect())
            .collect();
        assert_replay_matches_full(
            &txns,
            &splits,
            MinSupport::from_percent(pct),
            conf,
            ALL_REPRESENTATIONS[repr_ix],
            &Serial,
        );
    }
}
