//! Shape tests for the simulated cluster: the qualitative claims of the
//! paper's evaluation (§8) must hold in the model, at test scale.

use dbstore::HorizontalDb;
use memchannel::{ClusterConfig, CostModel};
use mining_types::MinSupport;
use questgen::{QuestGenerator, QuestParams};

fn db() -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::t10_i6(8_000)).generate_all())
}

fn cost() -> CostModel {
    CostModel::dec_alpha_1997()
}

#[test]
fn eclat_beats_count_distribution_on_every_configuration() {
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    for topo in [
        ClusterConfig::sequential(),
        ClusterConfig::new(2, 1),
        ClusterConfig::new(4, 1),
        ClusterConfig::new(2, 4),
    ] {
        let ec = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost(), &Default::default());
        let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost(), &Default::default());
        let ratio = cd.total_secs() / ec.total_secs();
        assert!(
            ratio > 2.0,
            "{}: Eclat should win clearly, ratio {ratio:.1}",
            topo.label()
        );
    }
}

#[test]
fn fewer_processors_per_host_wins_at_equal_t() {
    // §8.1: "for the same number of total processors, Eclat does better
    // on configurations that have fewer processors per host" (disk
    // contention).
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    let c = cost();
    let t8_p1 = eclat::cluster::mine_cluster(
        &db,
        minsup,
        &ClusterConfig::new(8, 1),
        &c,
        &Default::default(),
    );
    let t8_p4 = eclat::cluster::mine_cluster(
        &db,
        minsup,
        &ClusterConfig::new(2, 4),
        &c,
        &Default::default(),
    );
    assert!(
        t8_p1.total_secs() < t8_p4.total_secs(),
        "H=8,P=1 ({:.2}s) must beat H=2,P=4 ({:.2}s)",
        t8_p1.total_secs(),
        t8_p4.total_secs()
    );
}

#[test]
fn speedup_grows_with_hosts_at_p1() {
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    let c = cost();
    let times: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&h| {
            eclat::cluster::mine_cluster(
                &db,
                minsup,
                &ClusterConfig::new(h, 1),
                &c,
                &Default::default(),
            )
            .total_secs()
        })
        .collect();
    // Strict gains early; at H=8 the O(H) shared-region reduction begins
    // to bite at this small |D| (the paper's "improvement only if there
    // is sufficient work", §8.1), so only require near-monotonicity.
    assert!(times[1] < times[0], "H=2 vs H=1: {times:?}");
    assert!(times[2] < times[1], "H=4 vs H=2: {times:?}");
    assert!(times[3] < times[2] * 1.15, "H=8 vs H=4: {times:?}");
    assert!(
        times[3] < 0.6 * times[0],
        "overall speedup at H=8: {times:?}"
    );
}

#[test]
fn transformation_dominates_eclat_setup() {
    // §8.1: "the transformation phase dominates (roughly 55-60%) the
    // total execution of Eclat" — we assert the weaker, scale-robust
    // form: setup (init+transform) is the largest share and transform
    // exceeds the async mining phase.
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    let rep = eclat::cluster::mine_cluster(
        &db,
        minsup,
        &ClusterConfig::sequential(),
        &cost(),
        &Default::default(),
    );
    let transform = rep.timeline.phase_secs(eclat::cluster::PHASE_TRANSFORM);
    let init = rep.timeline.phase_secs(eclat::cluster::PHASE_INIT);
    let total = rep.total_secs();
    let setup_frac = (transform + init) / total;
    assert!(
        (0.35..0.9).contains(&setup_frac),
        "setup fraction {setup_frac:.2} out of plausible band"
    );
}

#[test]
fn count_distribution_scans_per_iteration_eclat_three() {
    // §7: Eclat reads its partition ~3 times; CD once per iteration.
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    let topo = ClusterConfig::new(2, 1);
    let c = cost();
    let ec = eclat::cluster::mine_cluster(&db, minsup, &topo, &c, &Default::default());
    let cd = parbase::mine_count_dist(&db, minsup, &topo, &c, &Default::default());
    assert!(cd.iterations >= 8, "expected many iterations at 0.1%");
    let ec_disk = ec.timeline.per_proc[0].disk_ns;
    let cd_disk = cd.timeline.per_proc[0].disk_ns;
    // CD reads the partition `iterations` times; Eclat ~2 horizontal
    // scans + 1 vertical write + 1 vertical read of (smaller) tid-lists.
    assert!(
        cd_disk > 2.0 * ec_disk,
        "CD disk {cd_disk} vs Eclat disk {ec_disk}"
    );
}

#[test]
fn hybrid_recovers_intra_host_disk_contention() {
    let db = db();
    let minsup = MinSupport::from_percent(0.1);
    let topo = ClusterConfig::new(2, 4);
    let c = cost();
    let flat = eclat::cluster::mine_cluster(&db, minsup, &topo, &c, &Default::default());
    let hybrid = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &c, &Default::default());
    assert_eq!(flat.frequent, hybrid.frequent);
    assert!(
        hybrid.total_secs() < flat.total_secs(),
        "hybrid {:.2}s should beat flat {:.2}s at P=4",
        hybrid.total_secs(),
        flat.total_secs()
    );
}

#[test]
fn simulated_timelines_are_deterministic() {
    let db = db();
    let minsup = MinSupport::from_percent(0.2);
    let topo = ClusterConfig::new(4, 2);
    let c = cost();
    let a = eclat::cluster::mine_cluster(&db, minsup, &topo, &c, &Default::default());
    let b = eclat::cluster::mine_cluster(&db, minsup, &topo, &c, &Default::default());
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.frequent, b.frequent);
}
