//! Regression tests for the *shapes* of the paper's evaluation artifacts
//! (the things EXPERIMENTS.md reports), at test-friendly scale.

use dbstore::HorizontalDb;
use mining_types::MinSupport;
use questgen::{QuestGenerator, QuestParams};

fn quest(d: usize) -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::t10_i6(d)).generate_all())
}

#[test]
fn figure6_shape_unimodal_with_geometric_tail() {
    let db = quest(5_000);
    let fs = eclat::sequential::mine(&db, MinSupport::from_percent(0.1));
    let counts = fs.counts_by_size(); // index 0 = size 1 (zero here)
    assert_eq!(counts[0], 0, "Eclat reports no singletons");
    let sizes: Vec<usize> = counts[1..].to_vec();
    assert!(
        sizes.len() >= 8,
        "expected deep lattice, got {} levels",
        sizes.len()
    );
    // unimodal: rises to a single peak then falls
    let peak = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    let peak_k = peak + 2;
    assert!(
        (3..=7).contains(&peak_k),
        "peak at k={peak_k}, paper peaks mid-range"
    );
    for w in sizes[..=peak].windows(2) {
        assert!(w[0] <= w[1], "non-rising before the peak: {sizes:?}");
    }
    for w in sizes[peak..].windows(2) {
        assert!(w[0] >= w[1], "non-falling after the peak: {sizes:?}");
    }
    assert!(
        fs.len() > 10_000,
        "0.1% support should yield a rich lattice"
    );
}

#[test]
fn smaller_database_has_more_frequent_itemsets_at_fixed_percent() {
    // §8.1: "Even though T10.I6.D800K is half the size of
    // T10.I6.D1600K, it has more than twice as many frequent itemsets"
    // (at fixed 0.1 %). The monotone form holds at any scale pair.
    let small = eclat::sequential::mine(&quest(4_000), MinSupport::from_percent(0.1)).len();
    let large = eclat::sequential::mine(&quest(16_000), MinSupport::from_percent(0.1)).len();
    assert!(
        small > large,
        "D4K → {small} itemsets should exceed D16K → {large}"
    );
}

#[test]
fn table2_improvement_ratio_in_paper_band() {
    let db = quest(8_000);
    let minsup = MinSupport::from_percent(0.1);
    let cost = memchannel::CostModel::dec_alpha_1997();
    let topo = memchannel::ClusterConfig::sequential();
    let ec = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
    let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
    let ratio = cd.total_secs() / ec.total_secs();
    // paper band: 5.2–17.7 sequential; accept a generous neighborhood
    // so calibration nudges don't break the build
    assert!(
        (3.0..30.0).contains(&ratio),
        "sequential CD/E ratio {ratio:.1} left the plausible band"
    );
    // setup share of Eclat total: paper says ~55-60 %
    let setup_frac = ec.setup_secs() / ec.total_secs();
    assert!(
        (0.35..0.9).contains(&setup_frac),
        "setup fraction {setup_frac:.2}"
    );
}

#[test]
fn iterations_match_lattice_depth() {
    // CD iterates once per level; Eclat finds the same depth.
    let db = quest(4_000);
    let minsup = MinSupport::from_percent(0.1);
    let cost = memchannel::CostModel::dec_alpha_1997();
    let cd = parbase::mine_count_dist(
        &db,
        minsup,
        &memchannel::ClusterConfig::sequential(),
        &cost,
        &Default::default(),
    );
    let depth = cd.frequent.max_size();
    assert!(
        cd.iterations == depth + 1 || cd.iterations == depth,
        "iterations {} vs depth {depth}",
        cd.iterations
    );
    assert!(depth >= 8, "expected a deep lattice, got {depth}");
}
