//! The workspace's golden invariant: **every** miner produces the
//! identical frequent itemsets with identical supports on the same input.
//!
//! Algorithms covered: sequential Apriori, sequential Eclat, d-Eclat
//! (diffsets), rayon-parallel Eclat, cluster Eclat, hybrid Eclat, Count
//! Distribution, and Candidate Distribution — on realistic Quest data,
//! not just toy matrices.

use dbstore::HorizontalDb;
use eclat::EclatConfig;
use memchannel::{ClusterConfig, CostModel};
use mining_types::{FrequentSet, MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};

fn quest_db(d: usize, seed: u64) -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::tiny(d, seed)).generate_all())
}

fn strip_singletons(fs: &FrequentSet) -> FrequentSet {
    fs.iter()
        .filter(|(is, _)| is.len() >= 2)
        .map(|(is, s)| (is.clone(), s))
        .collect()
}

#[test]
fn all_miners_agree_on_quest_data() {
    let db = quest_db(3_000, 99);
    let minsup = MinSupport::from_percent(1.0);
    let cost = CostModel::dec_alpha_1997();
    let topo = ClusterConfig::new(2, 2);

    let apriori_full = apriori::mine(&db, minsup);
    assert!(
        apriori_full.max_size() >= 3,
        "test input should produce itemsets beyond pairs, got max size {}",
        apriori_full.max_size()
    );
    let reference = strip_singletons(&apriori_full);

    let eclat_seq = eclat::sequential::mine(&db, minsup);
    assert_eq!(eclat_seq, reference, "sequential Eclat");

    let eclat_par = eclat::parallel::mine(&db, minsup);
    assert_eq!(eclat_par, reference, "rayon Eclat");

    let cluster = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
    assert_eq!(cluster.frequent, reference, "cluster Eclat");

    let hybrid = eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &Default::default());
    assert_eq!(hybrid.frequent, reference, "hybrid Eclat");

    let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
    assert_eq!(cd.frequent, apriori_full, "Count Distribution");

    let cand = parbase::mine_candidate_dist(&db, minsup, &topo, &cost, &Default::default());
    assert_eq!(cand.frequent, apriori_full, "Candidate Distribution");
}

#[test]
fn all_miners_agree_across_supports_and_seeds() {
    for seed in [3u64, 17] {
        let db = quest_db(1_500, seed);
        for pct in [0.8, 2.0, 5.0] {
            let minsup = MinSupport::from_percent(pct);
            let reference = eclat::sequential::mine(&db, minsup);
            assert_eq!(
                eclat::parallel::mine(&db, minsup),
                reference,
                "seed {seed} pct {pct}"
            );
            assert_eq!(
                strip_singletons(&apriori::mine(&db, minsup)),
                reference,
                "seed {seed} pct {pct}"
            );
        }
    }
}

#[test]
fn every_topology_and_heuristic_agrees() {
    let db = quest_db(2_000, 5);
    let minsup = MinSupport::from_percent(1.5);
    let cost = CostModel::dec_alpha_1997();
    let reference = eclat::sequential::mine(&db, minsup);
    for topo in [
        ClusterConfig::new(1, 1),
        ClusterConfig::new(3, 1),
        ClusterConfig::new(2, 3),
        ClusterConfig::new(5, 2),
    ] {
        for heuristic in [
            eclat::ScheduleHeuristic::GreedyPairs,
            eclat::ScheduleHeuristic::SupportWeighted,
            eclat::ScheduleHeuristic::RoundRobin,
        ] {
            let cfg = EclatConfig {
                heuristic,
                ..Default::default()
            };
            let rep = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg);
            assert_eq!(rep.frequent, reference, "{} {:?}", topo.label(), heuristic);
        }
    }
}

#[test]
fn every_representation_agrees_on_quest_data() {
    use eclat::Representation;
    let db = quest_db(2_000, 42);
    let minsup = MinSupport::from_percent(1.5);
    let cost = CostModel::dec_alpha_1997();
    let topo = ClusterConfig::new(2, 2);
    let reference = eclat::sequential::mine(&db, minsup);
    assert!(!reference.is_empty());
    for repr in [
        Representation::TidList,
        Representation::Diffset,
        Representation::AutoSwitch { depth: 1 },
        Representation::AutoSwitch { depth: 3 },
        Representation::Bitmap,
        Representation::AutoDensity { permille: 8 },
        // Extremes force the pure-chunked and pure-bitmap arms.
        Representation::AutoDensity { permille: 0 },
        Representation::AutoDensity { permille: 1000 },
    ] {
        let cfg = EclatConfig::with_representation(repr);
        let mut meter = OpMeter::new();
        assert_eq!(
            eclat::sequential::mine_with(&db, minsup, &cfg, &mut meter),
            reference,
            "sequential {repr:?}"
        );
        assert_eq!(
            eclat::parallel::mine_with(&db, minsup, &cfg, &mut OpMeter::new()),
            reference,
            "parallel {repr:?}"
        );
        assert_eq!(
            eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg).frequent,
            reference,
            "cluster {repr:?}"
        );
        assert_eq!(
            eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg).frequent,
            reference,
            "hybrid {repr:?}"
        );
        assert_eq!(
            eclat::clique::mine_with(&db, minsup, &cfg, &mut OpMeter::new()),
            reference,
            "clique {repr:?}"
        );
    }
}

/// The same representation matrix on a *dense* synthetic database — the
/// regime the bitmap representation targets, where auto-density actually
/// selects bitmaps (on sparse Quest data it stays on chunked lists).
#[test]
fn every_representation_agrees_on_dense_data() {
    use eclat::Representation;
    let db = HorizontalDb::from_transactions(
        QuestGenerator::new(QuestParams::dense(1_500, 7)).generate_all(),
    );
    let minsup = MinSupport::from_percent(20.0);
    let cost = CostModel::dec_alpha_1997();
    let topo = ClusterConfig::new(2, 2);
    let reference = eclat::sequential::mine(&db, minsup);
    assert!(!reference.is_empty());
    for repr in [
        Representation::Diffset,
        Representation::AutoSwitch { depth: 2 },
        Representation::Bitmap,
        Representation::AutoDensity { permille: 8 },
        Representation::AutoDensity { permille: 1000 },
    ] {
        let cfg = EclatConfig::with_representation(repr);
        assert_eq!(
            eclat::sequential::mine_with(&db, minsup, &cfg, &mut OpMeter::new()),
            reference,
            "sequential {repr:?}"
        );
        assert_eq!(
            eclat::parallel::mine_with(&db, minsup, &cfg, &mut OpMeter::new()),
            reference,
            "parallel {repr:?}"
        );
        assert_eq!(
            eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg).frequent,
            reference,
            "cluster {repr:?}"
        );
        assert_eq!(
            eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg).frequent,
            reference,
            "hybrid {repr:?}"
        );
    }
}

#[test]
fn maximal_mining_agrees_across_representations() {
    use eclat::Representation;
    let minsup = MinSupport::from_percent(1.5);
    // A dense database (8-item core present in every transaction) forces
    // deep look-aheads; the Quest data exercises the sparse regime.
    let dense = HorizontalDb::from_transactions(
        (0..200u32)
            .map(|i| {
                let mut t: Vec<mining_types::ItemId> = (0..8).map(mining_types::ItemId).collect();
                t.push(mining_types::ItemId(8 + (i % 7)));
                t
            })
            .collect::<Vec<_>>(),
    );
    for (label, db) in [("quest", quest_db(2_000, 42)), ("dense", dense)] {
        let reference = eclat::maximal::maximal_of(&eclat::sequential::mine(&db, minsup));
        assert!(!reference.is_empty(), "{label}");
        for repr in [
            Representation::TidList,
            Representation::Diffset,
            Representation::AutoSwitch { depth: 0 },
            Representation::AutoSwitch { depth: 2 },
            Representation::Bitmap,
            Representation::AutoDensity { permille: 8 },
        ] {
            let cfg = EclatConfig::with_representation(repr);
            let got = eclat::maximal::mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new());
            assert_eq!(got, reference, "{label} {repr:?}");
        }
    }
}

#[test]
fn downward_closure_on_quest_output() {
    let db = quest_db(2_500, 1);
    let minsup = MinSupport::from_percent(1.0);
    let mut meter = OpMeter::new();
    let fs = eclat::sequential::mine_with(&db, minsup, &EclatConfig::with_singletons(), &mut meter);
    assert_eq!(fs.closure_violation(), None);
}

#[test]
fn supports_match_direct_counting() {
    // Every reported support must equal a from-scratch scan count.
    let db = quest_db(1_000, 8);
    let minsup = MinSupport::from_percent(2.0);
    let fs = eclat::sequential::mine(&db, minsup);
    assert!(!fs.is_empty());
    for (is, sup) in fs.iter() {
        let direct = db.iter().filter(|(_, t)| is.is_subset_of_sorted(t)).count() as u32;
        assert_eq!(direct, sup, "{is}");
    }
}
