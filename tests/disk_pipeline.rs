//! The full on-disk pipeline (§3's per-processor local-disk blocks made
//! literal): generate → write per-processor block files → read blocks
//! back → mine per the three-scan discipline → identical answer to the
//! in-memory run; plus the vertical files of the transformation phase.

use dbstore::{HorizontalDb, PartitionStore, VerticalDb};
use mining_types::{ItemId, MinSupport};
use questgen::{QuestGenerator, QuestParams};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eclat-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mining_from_disk_store_matches_in_memory() {
    let dir = tempdir("mine");
    let procs = 4;
    let store = PartitionStore::create(&dir, procs).unwrap();
    let db = HorizontalDb::from_transactions(
        QuestGenerator::new(QuestParams::tiny(2_000, 33)).generate_all(),
    );
    let written = store.write_blocks(&db).unwrap();
    assert_eq!(written.len(), procs);

    // reassemble from the block files in processor order
    let mut all: Vec<Vec<ItemId>> = Vec::new();
    for (p, &expected) in written.iter().enumerate() {
        let (block, bytes) = store.read_block(p).unwrap();
        assert_eq!(bytes, expected);
        all.extend(block.iter().map(|(_, t)| t.to_vec()));
    }
    let from_disk = HorizontalDb::from_transactions(all).with_num_items(db.num_items());
    assert_eq!(from_disk, db);

    let minsup = MinSupport::from_percent(1.0);
    assert_eq!(
        eclat::sequential::mine(&from_disk, minsup),
        eclat::sequential::mine(&db, minsup)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn vertical_files_round_trip_per_processor() {
    // The transformation phase's "written out to disk" step.
    let dir = tempdir("vert");
    let procs = 3;
    let store = PartitionStore::create(&dir, procs).unwrap();
    let db = HorizontalDb::from_transactions(
        QuestGenerator::new(QuestParams::tiny(900, 5)).generate_all(),
    );
    let partition = dbstore::BlockPartition::equal_blocks(db.num_transactions(), procs);
    let mut totals = 0u64;
    for (p, range) in partition.iter() {
        let vert = VerticalDb::from_horizontal_range(&db, range);
        totals += store.write_vertical(p, &vert).unwrap();
        let (back, _) = store.read_vertical(p).unwrap();
        assert_eq!(back, vert);
    }
    assert!(totals > 0);
    // merging the per-processor verticals reproduces the global one
    let parts: Vec<VerticalDb> = (0..procs)
        .map(|p| store.read_vertical(p).unwrap().0)
        .collect();
    let merged = dbstore::vertical::merge_partitions(&parts);
    assert_eq!(merged, VerticalDb::from_horizontal(&db));
    store.clear().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
