//! Market-basket analysis — the paper's prototypical application (§1):
//! *"The prototypical application is the analysis of sales or basket
//! data. … The data-mining provides information about the set of items
//! generally bought together."*
//!
//! Builds a retail scenario with named products, plants a handful of
//! ground-truth co-purchase patterns on top of noise, mines with the
//! rayon-parallel Eclat, and checks the planted patterns are recovered.
//!
//! ```text
//! cargo run --example market_basket --release
//! ```

use eclat_repro::prelude::*;
use mining_types::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRODUCTS: &[&str] = &[
    "bread",
    "butter",
    "milk",
    "eggs",
    "cheese",
    "apples",
    "bananas",
    "coffee",
    "tea",
    "sugar",
    "pasta",
    "tomato-sauce",
    "parmesan",
    "beer",
    "chips",
    "salsa",
    "diapers",
    "wipes",
    "cereal",
    "yogurt",
    "chicken",
    "rice",
    "beans",
    "salt",
    "pepper",
    "oil",
    "flour",
    "chocolate",
    "wine",
    "crackers",
];

/// Planted co-purchase patterns with their basket probability.
const PATTERNS: &[(&[usize], f64)] = &[
    (&[0, 1, 2], 0.18),    // bread + butter + milk
    (&[10, 11, 12], 0.12), // pasta + tomato-sauce + parmesan
    (&[13, 14, 15], 0.10), // beer + chips + salsa
    (&[16, 17], 0.08),     // diapers + wipes
    (&[7, 9], 0.15),       // coffee + sugar
];

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 20_000usize;
    let mut txns: Vec<Vec<ItemId>> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut basket: Vec<ItemId> = Vec::new();
        for &(items, p) in PATTERNS {
            if rng.random::<f64>() < p {
                basket.extend(items.iter().map(|&i| ItemId(i as u32)));
            }
        }
        // 1..6 random filler products
        for _ in 0..rng.random_range(1..6) {
            basket.push(ItemId(rng.random_range(0..PRODUCTS.len() as u32)));
        }
        txns.push(basket);
    }
    let db = HorizontalDb::from_transactions(txns);
    println!(
        "{} baskets over {} products\n",
        db.num_transactions(),
        PRODUCTS.len()
    );

    // Mine with the shared-memory parallel Eclat at 5 % support.
    let minsup = MinSupport::from_percent(5.0);
    let mut meter = mining_types::OpMeter::new();
    let frequent = eclat::parallel::mine_with(
        &db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );
    println!("frequent itemsets (>=2 items):");
    for c in frequent.sorted() {
        if c.itemset.len() >= 2 {
            let names: Vec<&str> = c
                .itemset
                .items()
                .iter()
                .map(|i| PRODUCTS[i.index()])
                .collect();
            println!("  {:<40} support {:>5}", names.join(" + "), c.support);
        }
    }

    // Every planted pattern must be recovered.
    for &(items, p) in PATTERNS {
        let is = mining_types::Itemset::from_unsorted(items.iter().map(|&i| ItemId(i as u32)));
        let sup = frequent
            .support_of(&is)
            .unwrap_or_else(|| panic!("planted pattern {is} not recovered"));
        println!(
            "planted {:?}: expected ~{:.0}, mined {}",
            items.iter().map(|&i| PRODUCTS[i]).collect::<Vec<_>>(),
            p * n as f64,
            sup
        );
    }

    // High-confidence rules.
    println!("\nrules at 80% confidence:");
    for r in assoc_rules::generate(&frequent, 0.8).iter().take(12) {
        let name = |is: &mining_types::Itemset| {
            is.items()
                .iter()
                .map(|i| PRODUCTS[i.index()])
                .collect::<Vec<_>>()
                .join("+")
        };
        println!(
            "  {:<28} => {:<18} conf {:.2}  lift {:.1}",
            name(&r.antecedent),
            name(&r.consequent),
            r.confidence(),
            r.lift(db.num_transactions())
        );
    }
}
