//! Run the paper's distributed Eclat against Count Distribution on the
//! simulated 8-host DEC Memory Channel cluster and print the full
//! virtual timelines — a miniature of Table 2 with phase breakdowns.
//!
//! ```text
//! cargo run --example cluster_simulation --release
//! ```

use eclat::cluster::{PHASE_ASYNC, PHASE_INIT, PHASE_REDUCE, PHASE_TRANSFORM};
use eclat_repro::prelude::*;

fn main() {
    let params = QuestParams::t10_i6(20_000);
    println!("generating {} ...", params.name());
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let minsup = MinSupport::from_percent(0.1);
    let cost = CostModel::dec_alpha_1997();

    for topo in [
        ClusterConfig::sequential(),
        ClusterConfig::new(4, 1),
        ClusterConfig::new(2, 2),
        ClusterConfig::new(8, 4), // the paper's full 32-processor testbed
    ] {
        println!("\n=== {} ===", topo.label());

        let ec = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &Default::default());
        println!(
            "Eclat:      total {:>7.1}s   phases: init {:.1}s | transform {:.1}s | async {:.1}s | reduce {:.2}s",
            ec.total_secs(),
            ec.timeline.phase_secs(PHASE_INIT),
            ec.timeline.phase_secs(PHASE_TRANSFORM),
            ec.timeline.phase_secs(PHASE_ASYNC),
            ec.timeline.phase_secs(PHASE_REDUCE),
        );
        println!(
            "            |L2| = {}, exchange rounds = {}, schedule imbalance = {:.3}",
            ec.num_l2,
            ec.exchange_rounds,
            ec.assignment.imbalance()
        );

        let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
        println!(
            "Count Dist: total {:>7.1}s   {} iterations (= {} database scans + barriers)",
            cd.total_secs(),
            cd.iterations,
            cd.iterations
        );
        println!(
            "improvement ratio (CD / Eclat): {:.1}x",
            cd.total_secs() / ec.total_secs()
        );

        // full per-phase / per-processor report
        print!("{}", memchannel::stats::render(&ec.timeline));

        // sanity: identical frequent sets
        let cd_pairs_up: mining_types::FrequentSet = cd
            .frequent
            .iter()
            .filter(|(is, _)| is.len() >= 2)
            .map(|(is, s)| (is.clone(), s))
            .collect();
        assert_eq!(cd_pairs_up, ec.frequent);
    }
    println!("\n(all runs produced identical frequent-itemset results)");
}
