//! Telecommunications alarm correlation — one of the application domains
//! the paper's introduction motivates: *"Association rules have been
//! shown to be useful in domains that range from decision support to
//! telecommunications alarm diagnosis, and prediction."*
//!
//! Synthesizes alarm bursts from a small network model (a root failure on
//! a node probabilistically triggers dependent alarms downstream), groups
//! alarms into time-window "transactions", mines co-occurring alarm sets
//! with Eclat, and derives diagnosis rules such as
//! `link-down + high-ber => card-fault`.
//!
//! ```text
//! cargo run --example alarm_correlation --release
//! ```

use eclat_repro::prelude::*;
use mining_types::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ALARMS: &[&str] = &[
    "link-down",     // 0
    "high-ber",      // 1  (bit error rate)
    "card-fault",    // 2
    "power-dip",     // 3
    "fan-failure",   // 4
    "temp-high",     // 5
    "switch-reboot", // 6
    "route-flap",    // 7
    "packet-loss",   // 8
    "latency-spike", // 9
    "auth-failure",  // 10
    "config-drift",  // 11
];

/// Causal cascades: a root alarm and the alarms it tends to trigger,
/// with trigger probabilities.
const CASCADES: &[(usize, &[(usize, f64)])] = &[
    (2, &[(0, 0.9), (1, 0.8), (8, 0.6)]), // card-fault → link-down, high-ber, loss
    (4, &[(5, 0.95), (6, 0.4)]),          // fan-failure → temp-high, maybe reboot
    (3, &[(6, 0.7), (0, 0.5)]),           // power-dip → reboot, link-down
    (7, &[(8, 0.8), (9, 0.85)]),          // route-flap → loss, latency
];

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    let windows = 30_000usize;
    let mut txns: Vec<Vec<ItemId>> = Vec::with_capacity(windows);
    for _ in 0..windows {
        let mut alarms: Vec<ItemId> = Vec::new();
        // each window: some root causes fire
        for &(root, effects) in CASCADES {
            if rng.random::<f64>() < 0.06 {
                alarms.push(ItemId(root as u32));
                for &(eff, p) in effects {
                    if rng.random::<f64>() < p {
                        alarms.push(ItemId(eff as u32));
                    }
                }
            }
        }
        // background noise alarms
        for _ in 0..rng.random_range(0..3) {
            alarms.push(ItemId(rng.random_range(0..ALARMS.len() as u32)));
        }
        if alarms.is_empty() {
            alarms.push(ItemId(rng.random_range(0..ALARMS.len() as u32)));
        }
        txns.push(alarms);
    }
    let db = HorizontalDb::from_transactions(txns);
    println!(
        "{} alarm windows over {} alarm types\n",
        db.num_transactions(),
        ALARMS.len()
    );

    let minsup = MinSupport::from_percent(2.0);
    let mut meter = mining_types::OpMeter::new();
    let frequent = eclat::parallel::mine_with(
        &db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );

    println!("co-occurring alarm sets (support >= 2%):");
    for c in frequent.sorted() {
        if c.itemset.len() >= 2 {
            let names: Vec<&str> = c
                .itemset
                .items()
                .iter()
                .map(|i| ALARMS[i.index()])
                .collect();
            println!("  {:<44} {:>5} windows", names.join(" , "), c.support);
        }
    }

    // Diagnosis rules: symptoms => root cause, at 60% confidence.
    println!("\ndiagnosis rules (confidence >= 60%):");
    let name = |is: &mining_types::Itemset| {
        is.items()
            .iter()
            .map(|i| ALARMS[i.index()])
            .collect::<Vec<_>>()
            .join("+")
    };
    let mut shown = 0;
    for r in assoc_rules::generate(&frequent, 0.6) {
        // only rules whose consequent is a known root cause
        let is_root = r
            .consequent
            .items()
            .iter()
            .all(|i| CASCADES.iter().any(|&(root, _)| root == i.index()));
        if is_root && r.consequent.len() == 1 {
            println!(
                "  {:<36} => {:<14} conf {:.2}  lift {:.1}",
                name(&r.antecedent),
                name(&r.consequent),
                r.confidence(),
                r.lift(db.num_transactions())
            );
            shown += 1;
            if shown >= 12 {
                break;
            }
        }
    }
    assert!(shown > 0, "expected at least one diagnosis rule");

    // The strongest cascade must be recovered as an itemset.
    let fan_temp = mining_types::Itemset::of(&[4, 5]);
    assert!(
        frequent.contains(&fan_temp),
        "fan-failure + temp-high cascade not found"
    );
    println!("\n(recovered the planted fan-failure => temp-high cascade)");
}
