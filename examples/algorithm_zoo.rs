//! The whole algorithm family on one database: every miner in the
//! workspace, its lineage in the paper, and its real wall-clock time —
//! all producing the identical answer.
//!
//! ```text
//! cargo run --example algorithm_zoo --release
//! ```

use eclat_repro::prelude::*;
use mining_types::{FrequentSet, OpMeter};
use std::time::Instant;

fn strip_singletons(fs: &FrequentSet) -> FrequentSet {
    fs.iter()
        .filter(|(is, _)| is.len() >= 2)
        .map(|(is, s)| (is.clone(), s))
        .collect()
}

fn main() {
    let params = QuestParams::t10_i6(30_000);
    println!("database: {}, minimum support 0.2%\n", params.name());
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let minsup = MinSupport::from_percent(0.2);

    let mut reference: Option<FrequentSet> = None;
    let mut timed = |name: &str, lineage: &str, f: &mut dyn FnMut() -> FrequentSet| {
        let t0 = Instant::now();
        let fs = f();
        let dt = t0.elapsed().as_secs_f64();
        let pairs_up = strip_singletons(&fs);
        match &reference {
            None => reference = Some(pairs_up),
            Some(r) => assert_eq!(&pairs_up, r, "{name} disagreed!"),
        }
        println!(
            "{name:<26} {dt:>7.2}s   {:<6} itemsets   [{lineage}]",
            fs.len()
        );
    };

    timed("Eclat (sequential)", "the paper, §5", &mut || {
        eclat::sequential::mine(&db, minsup)
    });
    timed("Eclat (rayon)", "the paper on modern cores", &mut || {
        eclat::parallel::mine(&db, minsup)
    });
    timed("Eclat (diffsets)", "d-Eclat extension, §9", &mut || {
        // diffset kernel via the clique-free path
        let mut m = OpMeter::new();
        let cfg = eclat::EclatConfig::default();
        let threshold = minsup.count_threshold(db.num_transactions());
        let n = db.num_transactions();
        let tri = eclat::transform::count_pairs(&db, 0..n, &mut m);
        let l2: Vec<_> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let idx = eclat::transform::index_pairs(&l2);
        let lists = eclat::transform::build_pair_tidlists(&db, 0..n, &idx, &mut m);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        let mut out = FrequentSet::new();
        for class in eclat::equivalence::classes_of_l2(pairs) {
            for mem in &class.members {
                out.insert(mem.itemset.clone(), mem.tids.support());
            }
            eclat::diffset_mine::compute_frequent_diff(class, threshold, &cfg, &mut m, &mut out);
        }
        out
    });
    timed("Clique clustering", "reference [18]", &mut || {
        eclat::clique::mine(&db, minsup)
    });
    timed("Apriori", "reference [4], §2", &mut || {
        apriori::mine(&db, minsup)
    });
    timed("CCPD shared-memory", "reference [16], §3", &mut || {
        parbase::mine_ccpd_shm(&db, minsup, &Default::default())
    });
    timed("Partition (4 chunks)", "reference [14], §1.2", &mut || {
        apriori::mine_partition(&db, minsup, &Default::default()).0
    });

    // Sampling: sound but possibly incomplete — report recall instead.
    let t0 = Instant::now();
    let (sampled, report) = apriori::mine_with_sampling(
        &db,
        minsup,
        &apriori::SamplingConfig {
            sample_fraction: 0.2,
            support_lowering: 0.75,
            seed: 9,
        },
    );
    let dt = t0.elapsed().as_secs_f64();
    let full = reference.as_ref().unwrap();
    let recovered = full.iter().filter(|(is, _)| sampled.contains(is)).count();
    println!(
        "{:<26} {dt:>7.2}s   {:<6} itemsets   [refs [15,17]: sample {} txns, recall {:.1}%]",
        "Sampling (20%)",
        sampled.len(),
        report.sample_size,
        100.0 * recovered as f64 / full.len() as f64
    );

    // Maximal frequent itemsets.
    let t0 = Instant::now();
    let maximal = eclat::maximal::mine_maximal(&db, minsup);
    println!(
        "{:<26} {:>7.2}s   {:<6} maximal sets  [MaxEclat, ref [18]]",
        "MaxEclat",
        t0.elapsed().as_secs_f64(),
        maximal.len()
    );
    assert_eq!(maximal, eclat::maximal::maximal_of(full));

    println!(
        "\nall miners agreed on {} frequent itemsets (size >= 2)",
        full.len()
    );
}
