//! Quickstart: generate a small market-basket database, mine frequent
//! itemsets with Eclat, and print the strongest association rules.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use eclat_repro::prelude::*;
use mining_types::OpMeter;

fn main() {
    // A small Quest-style database: 5 000 baskets over 60 products with
    // 50 planted purchase patterns.
    let params = QuestParams::tiny(5_000, 7);
    println!("generating {} ...", params.name());
    let txns = QuestGenerator::new(params).generate_all();
    let db = HorizontalDb::from_transactions(txns);
    println!(
        "{} transactions, {} items, avg basket {:.1} items\n",
        db.num_transactions(),
        db.num_items(),
        db.avg_transaction_len()
    );

    // Mine at 2 % minimum support. `with_singletons` makes the result
    // downward closed so rule generation can look up every subset.
    let minsup = MinSupport::from_percent(2.0);
    let mut meter = OpMeter::new();
    let frequent = eclat::sequential::mine_with(
        &db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );
    println!(
        "frequent itemsets: {} (largest has {} items; {} tid comparisons)",
        frequent.len(),
        frequent.max_size(),
        meter.tid_cmp
    );
    println!("per size: {:?}\n", frequent.counts_by_size());

    // Association rules at 70 % confidence.
    let rules = assoc_rules::generate(&frequent, 0.7);
    println!("top rules (of {}):", rules.len());
    for r in rules.iter().take(10) {
        println!("  {r}   lift {:.2}", r.lift(db.num_transactions()));
    }
}
