#!/usr/bin/env bash
# Full pre-merge gate: release build, tests, formatting, lints.
# Run from the workspace root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test --test stats_schema (stats JSON schema golden)"
cargo test -q --test stats_schema

echo "==> cargo test -p assoc-serve (serving layer: oracle + wire robustness)"
cargo test -q -p assoc-serve

echo "==> servload --smoke (one-shot TCP load generator)"
cargo run -q --release -p repro-bench --bin servload -- --smoke \
    --json=results/servload_smoke.json

echo "==> cargo test -p eclat-net (distributed runtime: oracle + robustness)"
cargo test -q -p eclat-net

echo "==> distbench --smoke (real loopback workers, checked against sequential)"
cargo run -q --release -p repro-bench --bin distbench -- --smoke \
    --json=results/distbench_smoke.json

echo "==> dmine --spawn-local 4 == mine (measured cluster vs sequential CLI)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p eclat-cli -- generate --out "$tmpdir/t10.ech" \
    --transactions 20000 --seed 7 > /dev/null
cargo run -q --release -p eclat-cli -- mine --input "$tmpdir/t10.ech" \
    --support 0.25 > "$tmpdir/mine.out"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 4 > "$tmpdir/dmine.out"
diff <(tail -n +2 "$tmpdir/mine.out") <(tail -n +2 "$tmpdir/dmine.out")

echo "==> dmine --spawn-local 2 --threads 2 == mine (hybrid W x P workers)"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --threads 2 > "$tmpdir/dmine_hybrid.out"
diff <(tail -n +2 "$tmpdir/mine.out") <(tail -n +2 "$tmpdir/dmine_hybrid.out")

echo "==> dmine --mem-budget 64k == mine (out-of-core workers, forced spill)"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --threads 2 --mem-budget 64k \
    > "$tmpdir/dmine_spill.out"
diff <(tail -n +2 "$tmpdir/mine.out") <(tail -n +2 "$tmpdir/dmine_spill.out")

echo "==> dmine --repr bitmap / auto-density == mine (bitmap classes over the wire)"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --threads 2 --repr bitmap \
    > "$tmpdir/dmine_bitmap.out"
diff <(tail -n +2 "$tmpdir/mine.out") <(tail -n +2 "$tmpdir/dmine_bitmap.out")
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --threads 2 --repr auto-density \
    > "$tmpdir/dmine_autodensity.out"
diff <(tail -n +2 "$tmpdir/mine.out") <(tail -n +2 "$tmpdir/dmine_autodensity.out")

echo "==> dmine --trace: merged cluster timeline validates + converts to Chrome JSON"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --threads 2 --trace "$tmpdir/run.jsonl" \
    > /dev/null
test ! -e "$tmpdir/run.jsonl.w0"   # partial worker files must be cleaned up
cargo run -q --release -p eclat-cli -- trace --input "$tmpdir/run.jsonl" \
    --chrome "$tmpdir/run.json" > "$tmpdir/trace.out"
grep -q "valid trace" "$tmpdir/trace.out"
grep -q "3 process(es)" "$tmpdir/trace.out"
grep -q '"traceEvents"' "$tmpdir/run.json"

echo "==> ablations --scale=tiny (incl. representation x density + tracing gates)"
cargo run -q --release -p repro-bench --bin ablations -- --scale=tiny \
    > "$tmpdir/ablations.out"
grep -q "tracing overhead" "$tmpdir/ablations.out"
grep -q "representation × density" "$tmpdir/ablations.out"
grep -q "dense-db bitmap win" "$tmpdir/ablations.out"

echo "==> stats_diff: measured dmine stats vs simulated cluster stats (same schema)"
cargo run -q --release -p eclat-cli -- dmine --input "$tmpdir/t10.ech" \
    --support 0.25 --spawn-local 2 --stats=json > "$tmpdir/dist_stats.json"
cargo run -q --release -p eclat-cli -- simulate --input "$tmpdir/t10.ech" \
    --support 0.25 --hosts 2 --procs 1 --stats=json > "$tmpdir/sim_stats.json"
# Exit 1 (differences reported) is the expected outcome; 2 would be a
# schema error.
./scripts/stats_diff "$tmpdir/dist_stats.json" "$tmpdir/sim_stats.json" \
    > /dev/null || test $? -eq 1

echo "==> cargo test --test incremental_golden (incremental replay == full re-mine)"
cargo test -q --test incremental_golden

echo "==> stream --verify (batched incremental mine, checked per batch)"
cargo run -q --release -p eclat-cli -- stream --input "$tmpdir/t10.ech" \
    --support 1 --batch 5000 --verify --out "$tmpdir/live.snap" \
    > "$tmpdir/stream.out"
grep -q "\[verified\]" "$tmpdir/stream.out"
grep -q "streamed 20000 transactions in 4 batches" "$tmpdir/stream.out"

echo "==> stream -> serve --reload-secs (snapshot hot reload over loopback)"
cargo run -q --release -p eclat-cli -- serve --load "$tmpdir/live.snap" \
    --port 0 --port-file "$tmpdir/port" --serve-secs 6 --reload-secs 0.1 \
    > "$tmpdir/serve.out" &
serve_pid=$!
for _ in $(seq 50); do [ -s "$tmpdir/port" ] && break; sleep 0.1; done
test -s "$tmpdir/port"
# Re-streaming at a different support rewrites the snapshot in place
# (atomic rename); the poller must hot-swap it within a tick or two.
cargo run -q --release -p eclat-cli -- stream --input "$tmpdir/t10.ech" \
    --support 0.5 --batch 5000 --out "$tmpdir/live.snap" > /dev/null
sleep 1
cargo run -q --release -p eclat-cli -- query --addr "127.0.0.1:$(cat "$tmpdir/port")" \
    --server-stats > "$tmpdir/reload_stats.out"
# stream writes a snapshot per batch, so the poller may legitimately
# observe several generations — require at least one hot swap.
grep -Eq '"reloads":[1-9]' "$tmpdir/reload_stats.out"
wait "$serve_pid"
grep -Eq '[1-9][0-9]* reloads' "$tmpdir/serve.out"

echo "==> streambench --smoke (incremental vs full re-mine, equality-asserted)"
cargo run -q --release -p repro-bench --bin streambench -- --smoke \
    --json=results/streambench_smoke.json

echo "==> cargo test -p eclat-seq (SPADE kernel: unit + golden + proptest oracle)"
cargo test -q -p eclat-seq

echo "==> eclat seq --verify (SPADE vs GSP-style reference on generated data)"
cargo run -q --release -p eclat-cli -- generate --out "$tmpdir/c10.ecs" \
    --sequences 500 --seed 11 > /dev/null
cargo run -q --release -p eclat-cli -- seq --input "$tmpdir/c10.ecs" \
    --minsup 6 --verify > "$tmpdir/seq.out"
grep -q "\[verified\]" "$tmpdir/seq.out"

echo "==> eclat seq: parallel policies byte-identical to serial"
cargo run -q --release -p eclat-cli -- seq --input "$tmpdir/c10.ecs" \
    --minsup 6 --policy rayon > "$tmpdir/seq_rayon.out"
cargo run -q --release -p eclat-cli -- seq --input "$tmpdir/c10.ecs" \
    --minsup 6 --policy threads:3 > "$tmpdir/seq_threads.out"
diff <(tail -n +2 "$tmpdir/seq.out") <(tail -n +2 "$tmpdir/seq_rayon.out")
diff <(tail -n +2 "$tmpdir/seq_rayon.out") <(tail -n +2 "$tmpdir/seq_threads.out")

echo "==> seqbench --smoke (SPADE policies + maxlen ablation, equality-asserted)"
cargo run -q --release -p repro-bench --bin seqbench -- --smoke \
    --json=results/seqbench.json

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> all checks passed"
