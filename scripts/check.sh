#!/usr/bin/env bash
# Full pre-merge gate: release build, tests, formatting, lints.
# Run from the workspace root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test --test stats_schema (stats JSON schema golden)"
cargo test -q --test stats_schema

echo "==> cargo test -p assoc-serve (serving layer: oracle + wire robustness)"
cargo test -q -p assoc-serve

echo "==> servload --smoke (one-shot TCP load generator)"
cargo run -q --release -p repro-bench --bin servload -- --smoke \
    --json=results/servload_smoke.json

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> all checks passed"
