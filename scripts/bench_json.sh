#!/usr/bin/env bash
# Regenerate the machine-readable bench results in results/*.json.
#
# Runs table2, fig7, and ablations at --scale=tiny (seconds, not
# minutes) with --json; each document embeds the structured MiningStats
# reports (per-phase simulated seconds, per-processor split, kernel
# work). Pass a different scale as $1, e.g. ./scripts/bench_json.sh small
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-tiny}"

echo "==> table2 --scale=$SCALE --json=results/table2.json"
cargo run -q -p repro-bench --bin table2 --release -- \
    "--scale=$SCALE" --json=results/table2.json

echo "==> fig7 --scale=$SCALE --hybrid --json=results/fig7.json"
cargo run -q -p repro-bench --bin fig7 --release -- \
    "--scale=$SCALE" --hybrid --json=results/fig7.json

echo "==> ablations --scale=$SCALE --json=results/ablations.json"
cargo run -q -p repro-bench --bin ablations --release -- \
    "--scale=$SCALE" --json=results/ablations.json

echo "==> wrote results/table2.json results/fig7.json results/ablations.json"
