//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact surface it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng::random`] /
//! [`Rng::random_range`] methods. The generator is xoshiro256++ with a
//! SplitMix64 seed expansion — deterministic per seed, which is all the
//! Quest generator, samplers, and benches rely on.

/// Low-level uniform `u64` source.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling front-end, mirroring the `rand 0.9` method names.
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`f64` in `[0,1)`,
    /// `bool` fair coin, integers uniform over their full domain).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSampled,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::random`].
pub trait StandardUniform {
    /// Draw one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! std_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::random_range`] can sample.
pub trait UniformSampled: Copy + PartialOrd {
    /// Uniform sample from the inclusive span `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The predecessor of `hi` (for converting half-open bounds).
    fn prev(hi: Self) -> Self;
}

macro_rules! uniform_sampled_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for synthetic data generation.
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
            fn prev(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}
uniform_sampled_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn prev(hi: Self) -> Self {
        hi
    }
}

/// Range argument for [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_inclusive(rng, self.start, T::prev(self.end))
    }
}

impl<T: UniformSampled> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, the reference initialization for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v: u32 = rng.random_range(0..10);
            assert!(v < 10);
            seen_lo |= v == 0;
            seen_hi |= v == 9;
            let w: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&w));
            let x: i32 = rng.random_range(1..6);
            assert!((1..6).contains(&x));
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }
}
