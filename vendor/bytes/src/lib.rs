//! Offline stand-in for the `bytes` crate (the subset this workspace
//! uses): a growable [`BytesMut`] write buffer and the [`Buf`]/[`BufMut`]
//! little-endian accessors that `dbstore::binfmt` is written against.

use std::ops::Deref;

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Little-endian write accessors.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Append a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian read accessors that advance the cursor.
///
/// # Panics
/// All getters panic when the buffer holds fewer bytes than requested,
/// matching the upstream crate's contract.
pub trait Buf {
    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64;
    /// Bytes remaining.
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }
    fn remaining(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_u8(7);
        assert_eq!(buf.len(), 13);
        let mut r = &buf[..];
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64_le(1);
        assert!(!buf.is_empty());
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let data = [1u8, 2];
        let mut r = &data[..];
        let _ = r.get_u32_le();
    }
}
