//! Offline stand-in for `rayon` (the subset this workspace uses).
//!
//! No registry access in the build environment, so this vendored crate
//! provides real data parallelism on `std::thread::scope`: items are
//! split into one contiguous chunk per available core, each chunk is
//! mapped on its own OS thread, and results are re-concatenated in input
//! order. That preserves rayon's ordering guarantees for `collect` while
//! keeping the implementation a page long. There is no work stealing —
//! per-class mining work is coarse enough that static chunking is fine.

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map over owned items, preserving order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A materialized parallel iterator (items are collected up front; the
/// parallelism happens in the terminal operation).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Map each item in parallel.
    pub fn map<U, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collect the items (no-op reshaping; order preserved).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Collect mapped results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Map in parallel, then fold the results pairwise. `None` on empty.
    pub fn reduce_with<OP: Fn(U, U) -> U + Sync>(self, op: OP) -> Option<U> {
        par_map_vec(self.items, self.f).into_iter().reduce(op)
    }

    /// Map in parallel, then fold from an identity.
    pub fn reduce<ID: Fn() -> U + Sync, OP: Fn(U, U) -> U + Sync>(self, identity: ID, op: OP) -> U {
        par_map_vec(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }

    /// Run the mapped computation for its effects.
    pub fn for_each(self) {
        par_map_vec(self.items, self.f);
    }
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` for borrowed slices (and anything derefing to them).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_with_matches_sequential() {
        let v: Vec<u64> = (1..=1_000).collect();
        let sum = v.par_iter().map(|&x| x).reduce_with(|a, b| a + b);
        assert_eq!(sum, Some(500_500));
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.par_iter().map(|&x| x).reduce_with(|a, b| a + b), None);
    }

    #[test]
    fn reduce_with_identity() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let total = v
            .par_iter()
            .map(|c| c.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 21);
    }

    #[test]
    fn for_each_sees_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: Vec<u64> = (0..997).collect();
        let sum = AtomicU64::new(0);
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 997 * 996 / 2);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }
}
