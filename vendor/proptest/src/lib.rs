//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! The build environment has no registry access, so the workspace vendors
//! the strategy combinators and macros its tests are written against:
//! [`proptest!`], [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`],
//! [`prop_assume!`], [`prop_oneof!`], ranges / tuples / `Just` / `any` /
//! `collection::vec` strategies, and `prop_map` / `boxed`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   `Debug` but does not minimize them;
//! * **deterministic seeding** — every test function runs the same
//!   sequence of cases on every invocation (upstream defaults to OS
//!   entropy plus a persistence file);
//! * **default cases = 64** (upstream 256) to keep the tier-1 debug-mode
//!   test run fast; tests that need more pass an explicit
//!   [`test_runner::ProptestConfig::with_cases`].

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!` backend).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG, and error plumbing for the [`crate::proptest!`]
    //! macro expansion.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (`cases` is the only knob honored here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic source the strategies draw from.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Fixed-seed RNG: every test run sees the same case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D_D1CE),
            }
        }

        /// Next raw word (used by `any`).
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// Uniform index in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type the expanded test body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! Everything a test file needs with one glob import.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run `$cfg.cases` random cases of each embedded test function.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= cfg.cases.saturating_mul(20).saturating_add(1000),
                        "proptest: too many prop_assume! rejections ({} passes in {} attempts)",
                        passed,
                        attempts,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // the closure gives $body an early-exit scope for `?`
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(#[allow(unused_mut)] let mut $arg = $arg;)+
                        { $body }
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed after {} passing case(s): {}",
                                passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure reports the case instead of
/// unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Reject a case that does not satisfy a precondition; the runner draws a
/// replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..100, 0..10)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in small_vec()) {
            prop_assert!(v.len() < 10);
            for &x in &v {
                prop_assert!(x < 100, "element {}", x);
            }
        }

        #[test]
        fn tuples_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(7u32), 100u32..200]) {
            prop_assert!(v == 7 || (100..200).contains(&v));
        }

        #[test]
        fn any_works(seed in any::<u64>(), flag in any::<bool>()) {
            // both domains are inhabited; nothing else to check
            let _ = (seed, flag);
        }
    }

    #[test]
    // the nested proptest! expands to a #[test] fn inside this body; it is
    // invoked directly below, never via the harness
    #[allow(unnameable_test_items)]
    fn failure_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
