//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! The build environment has no registry access, so the bench targets run
//! against this minimal harness instead: each `bench.iter(..)` call warms
//! up briefly, then times a fixed batch of iterations and prints a
//! `group/name  time: [..]` line. There is no statistical analysis, no
//! HTML report, and no comparison against saved baselines — the point is
//! that `cargo bench` compiles, runs, and produces readable relative
//! numbers for the ablation axes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to the closure of `bench_function`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, first warming up, then measuring for roughly the
    /// configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Estimate per-iter cost from the warm-up to size the batch.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters as u128;
        let target = self.measurement.as_nanos();
        let batch = ((target / per_iter.max(1)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / batch as f64;
        self.iters = batch;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream knob (number of statistical samples); accepted and
    /// ignored — this harness times one batch.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// End the group (prints a separating blank line).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let full = format!("{}/{}", self.name, id.label);
        let mut line = format!(
            "{full:<60} time: [{} per iter, {} iters]",
            format_ns(b.mean_ns),
            b.iters
        );
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / b.mean_ns * 1e3),
                Throughput::Bytes(n) => {
                    format!("{:.3} MiB/s", n as f64 / b.mean_ns * 1e9 / (1 << 20) as f64)
                }
            };
            line.push_str(&format!(" thrpt: [{per_sec}]"));
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Benchmark harness configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Upstream knob (disable gnuplot/plotters output); no-op here.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Define a benchmark group function, upstream-compatible in both the
/// positional and the `name/config/targets` struct forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; $(#[$meta:meta])* config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; $(#[$meta:meta])* targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_time() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
